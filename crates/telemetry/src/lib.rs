//! In-tree observability for the YouTube CDN reproduction.
//!
//! The paper this workspace reproduces infers CDN policy from *observation*
//! — counting DNS decisions, redirections, and cache misses at the network
//! edge. This crate makes the simulator's own decisions observable the same
//! way, without perturbing them:
//!
//! * a structured event bus: an [`Event`] taxonomy plus a pluggable
//!   [`Sink`] trait ([`NullSink`], [`RingBufferSink`], [`JsonlSink`]);
//! * a [`MetricsRegistry`] of atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s with p50/p90/p99 estimation;
//! * scoped [`Span`] timers for phase profiling (`scenario.build`,
//!   `run.<dataset>`, `analysis.*`, `export`);
//! * a stderr [`Progress`] reporter so stdout stays machine-parseable.
//!
//! The entry point is the cloneable [`Telemetry`] handle. A *disabled*
//! handle (the default everywhere) costs one branch per instrument site:
//! events are built lazily inside closures that never run, spans never read
//! the clock, and no allocation happens. A hard invariant, enforced by
//! `tests/determinism.rs` in the core crate, is that telemetry never
//! touches the simulator's RNG stream: datasets are byte-identical with
//! telemetry on and off.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ytcdn_telemetry::{Event, RingBufferSink, Sink, Telemetry};
//!
//! let ring = Arc::new(RingBufferSink::new(128));
//! let tel = Telemetry::with_sink(Arc::clone(&ring) as Arc<dyn Sink>).with_scope("EU2");
//!
//! tel.counter("engine.cache_miss").inc();
//! tel.emit(|| Event::CacheMiss { t_ms: 5, dc: 3, video_rank: 900_001 });
//! {
//!     let _span = tel.span("scenario.build");
//!     // ... timed work ...
//! }
//!
//! let snap = tel.metrics_snapshot().unwrap();
//! assert_eq!(snap.counter("engine.cache_miss"), 1);
//! assert_eq!(ring.snapshot().len(), 2); // the cache miss + the phase event
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod progress;
pub mod sink;
pub mod span;

use std::sync::Arc;

pub use event::{DnsCauseKind, Event, RedirectKind, TelemetryRecord};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use progress::Progress;
pub use sink::{JsonlSink, NullSink, RingBufferSink, Sink};
pub use span::Span;

/// The shared telemetry handle: an event sink plus a metrics registry.
///
/// Cloning is cheap (two `Arc` bumps) and clones share state, so one handle
/// can fan out across the simulator's per-dataset threads. The handle is
/// either *enabled* (created by [`Telemetry::with_sink`]) or *disabled*
/// (created by [`Telemetry::disabled`] / [`Default`]); a disabled handle
/// reduces every operation to a branch on an `Option`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    scope: Option<Arc<str>>,
}

#[derive(Debug)]
struct Inner {
    sink: Arc<dyn Sink>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for dyn Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sink")
    }
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle writing events to `sink` and metrics to a fresh
    /// registry.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                metrics: MetricsRegistry::new(),
            })),
            scope: None,
        }
    }

    /// An enabled handle that collects metrics but discards events.
    pub fn metrics_only() -> Self {
        Self::with_sink(Arc::new(NullSink))
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A clone of this handle whose events carry `scope` (usually a dataset
    /// name). Metrics stay shared and unscoped.
    pub fn with_scope(&self, scope: &str) -> Self {
        Self {
            inner: self.inner.clone(),
            scope: Some(Arc::from(scope)),
        }
    }

    /// Records the event built by `build`. The closure only runs on an
    /// enabled handle, so hot paths pay nothing when telemetry is off.
    pub fn emit<F: FnOnce() -> Event>(&self, build: F) {
        if let Some(inner) = &self.inner {
            let rec = TelemetryRecord {
                scope: self.scope.as_deref().map(str::to_owned),
                event: build(),
            };
            inner.sink.record(&rec);
        }
    }

    /// The counter named `name`, or a detached no-op cell when disabled.
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Counter::detached(),
        }
    }

    /// The gauge named `name`, or a detached cell when disabled.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Gauge::detached(),
        }
    }

    /// The histogram named `name`, or a detached one when disabled.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Starts a phase span; the measurement is recorded when the returned
    /// guard drops. Inert on a disabled handle.
    pub fn span(&self, name: &'static str) -> Span {
        Span::start(self, name)
    }

    /// A snapshot of every metric, or `None` on a disabled handle.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.inner.as_ref().map(|i| i.metrics.snapshot())
    }

    /// Flushes the event sink.
    ///
    /// # Errors
    ///
    /// Returns the sink's first buffered I/O error, if any.
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.sink.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_cheap() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut built = false;
        tel.emit(|| {
            built = true;
            Event::Phase {
                name: "x".into(),
                wall_us: 0,
            }
        });
        assert!(!built, "event closure must not run when disabled");
        tel.counter("c").inc();
        tel.gauge("g").set(1.0);
        tel.histogram("h").record(1.0);
        assert!(tel.metrics_snapshot().is_none());
        tel.flush().unwrap();
    }

    #[test]
    fn clones_share_metrics() {
        let tel = Telemetry::metrics_only();
        let scoped = tel.with_scope("EU2");
        scoped.counter("shared").add(3);
        tel.counter("shared").add(4);
        assert_eq!(tel.metrics_snapshot().unwrap().counter("shared"), 7);
    }

    #[test]
    fn scope_is_attached_to_events() {
        let ring = Arc::new(RingBufferSink::new(8));
        let tel = Telemetry::with_sink(Arc::clone(&ring) as Arc<dyn Sink>);
        tel.emit(|| Event::Phase {
            name: "global".into(),
            wall_us: 1,
        });
        tel.with_scope("EU1-FTTH").emit(|| Event::Phase {
            name: "scoped".into(),
            wall_us: 2,
        });
        let events = ring.snapshot();
        assert_eq!(events[0].scope, None);
        assert_eq!(events[1].scope.as_deref(), Some("EU1-FTTH"));
    }

    #[test]
    fn handles_are_shareable_across_threads() {
        let tel = Telemetry::metrics_only();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tel = tel.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        tel.counter("threads").inc();
                    }
                });
            }
        });
        assert_eq!(tel.metrics_snapshot().unwrap().counter("threads"), 4000);
    }
}
