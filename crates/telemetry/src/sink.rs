//! Pluggable event sinks.
//!
//! A [`Sink`] receives every [`TelemetryRecord`] emitted through an enabled
//! [`crate::Telemetry`] handle. Three implementations cover the needs of the
//! workspace: [`NullSink`] (metrics only, events discarded),
//! [`RingBufferSink`] (tests and in-process inspection), and [`JsonlSink`]
//! (one JSON object per line, the interchange form the README documents).

use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::TelemetryRecord;

/// Destination for structured events. Implementations must be safe to share
/// across the simulator's per-dataset threads.
pub trait Sink: Send + Sync {
    /// Consumes one record. Implementations must not panic on I/O failure
    /// (telemetry must never take the simulation down); they should instead
    /// drop the record and surface the problem via [`Sink::flush`].
    fn record(&self, rec: &TelemetryRecord);

    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered while writing or flushing.
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards every event. The default sink: metrics and spans still work.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _rec: &TelemetryRecord) {}
}

/// Keeps the most recent `capacity` records in memory.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<TelemetryRecord>>,
}

impl RingBufferSink {
    /// Creates a ring buffer holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity > 0");
        Self {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// A snapshot of the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<TelemetryRecord> {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingBufferSink {
    fn record(&self, rec: &TelemetryRecord) {
        let mut buf = self
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(rec.clone());
    }
}

/// Writes one JSON object per line to an arbitrary writer.
///
/// I/O errors are remembered and reported by [`Sink::flush`] rather than
/// panicking mid-simulation.
pub struct JsonlSink<W: Write + Send> {
    inner: Mutex<JsonlState<W>>,
}

struct JsonlState<W> {
    writer: W,
    error: Option<io::Error>,
}

impl JsonlSink<BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL event log at `path`.
    ///
    /// # Errors
    ///
    /// Returns any error from creating the file.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        Self {
            inner: Mutex::new(JsonlState {
                writer,
                error: None,
            }),
        }
    }

    /// Flushes and returns the underlying writer (test helper).
    pub fn into_inner(self) -> W {
        let mut state = self
            .inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = state.writer.flush();
        state.writer
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, rec: &TelemetryRecord) {
        let mut state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.error.is_some() {
            return;
        }
        let line = match serde_json::to_string(rec) {
            Ok(l) => l,
            Err(e) => {
                state.error = Some(io::Error::new(io::ErrorKind::InvalidData, e));
                return;
            }
        };
        let res = state
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| state.writer.write_all(b"\n"));
        if let Err(e) = res {
            state.error = Some(e);
        }
    }

    fn flush(&self) -> io::Result<()> {
        let mut state = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        state.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DnsCauseKind, Event};

    fn rec(t_ms: u64) -> TelemetryRecord {
        TelemetryRecord {
            scope: Some("EU2".to_owned()),
            event: Event::DnsResolution {
                t_ms,
                ldns: 0,
                dc: 1,
                cause: DnsCauseKind::Preferred,
            },
        }
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let ring = RingBufferSink::new(3);
        assert!(ring.is_empty());
        for t in 0..5 {
            ring.record(&rec(t));
        }
        let snap = ring.snapshot();
        assert_eq!(ring.len(), 3);
        let times: Vec<u64> = snap
            .iter()
            .map(|r| match r.event {
                Event::DnsResolution { t_ms, .. } => t_ms,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_sink_round_trips_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&rec(10));
        sink.record(&rec(20));
        sink.flush().unwrap();
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<TelemetryRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, vec![rec(10), rec(20)]);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let sink = NullSink;
        sink.record(&rec(0));
        sink.flush().unwrap();
    }
}
