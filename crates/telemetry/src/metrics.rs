//! The metrics registry: atomic counters, gauges, and fixed-bucket
//! histograms with quantile estimation.
//!
//! Instrument sites resolve a metric once by `&'static str` name and then
//! update it lock-free through a cheap cloneable handle; the registry's
//! internal map is only locked on first resolution and on snapshot.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (used by disabled telemetry).
    pub fn detached() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds: a 1–2–5 series spanning nine
/// decades. Units are whatever the instrument site records — the workspace
/// convention is microseconds for phase timings.
pub fn default_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(27);
    let mut decade = 1.0f64;
    for _ in 0..9 {
        for m in [1.0, 2.0, 5.0] {
            bounds.push(m * decade);
        }
        decade *= 10.0;
    }
    bounds
}

/// A fixed-bucket histogram with lock-free recording.
///
/// Values above the last bound land in an overflow bucket; quantiles are
/// estimated by linear interpolation inside the containing bucket.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing bucket upper bounds.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` cells; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values, accumulated in whole units.
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram with the workspace-default 1–2–5 bounds.
    pub fn detached() -> Self {
        Self::with_bounds(default_bounds())
    }

    /// A histogram with caller-chosen bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation. Negative values clamp to zero.
    pub fn record(&self, value: f64) {
        let v = value.max(0.0);
        let inner = &self.0;
        let idx = inner
            .bounds
            .partition_point(|&b| b < v)
            .min(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v.round() as u64, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough copy of the histogram's state for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        let snap = HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets,
            count,
            sum: inner.sum.load(Ordering::Relaxed),
        };
        debug_assert_eq!(snap.buckets.len(), snap.bounds.len() + 1);
        snap
    }
}

/// Point-in-time copy of a histogram, with quantile estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one more entry than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (whole units).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the containing bucket. Returns 0 for an empty histogram; for
    /// observations in the overflow bucket the last bound is returned (a
    /// lower bound on the true quantile).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                if i == self.bounds.len() {
                    // Overflow bucket: no upper edge to interpolate toward.
                    return self.bounds[self.bounds.len() - 1];
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                let within = (target - cum as f64) / c as f64;
                return lower + (upper - lower) * within.clamp(0.0, 1.0);
            }
            cum = next;
        }
        self.bounds[self.bounds.len() - 1]
    }
}

/// Registry of named metrics. Shared by cloning [`crate::Telemetry`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// A poisoned registry lock is recovered rather than propagated:
    /// metrics are monotonic aggregates, so the state is usable even if a
    /// writer panicked mid-update.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(name)
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        self.gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(name)
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created with default bounds on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(name)
            .or_insert_with(Histogram::detached)
            .clone()
    }

    /// A serializable point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(&k, v)| (k.to_owned(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(&k, v)| (k.to_owned(), HistogramReport::from_snapshot(&v.snapshot())))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A histogram in report form: quantiles precomputed, buckets kept for
/// downstream tooling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    /// Total observations.
    pub count: u64,
    /// Sum of observations (whole units).
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (overflow last).
    pub buckets: Vec<u64>,
}

impl HistogramReport {
    fn from_snapshot(s: &HistogramSnapshot) -> Self {
        Self {
            count: s.count,
            sum: s.sum,
            mean: s.mean(),
            p50: s.quantile(0.50),
            p90: s.quantile(0.90),
            p99: s.quantile(0.99),
            bounds: s.bounds.clone(),
            buckets: s.buckets.clone(),
        }
    }
}

/// Point-in-time copy of a [`MetricsRegistry`]; the `--metrics-out` JSON.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram reports by name.
    pub histograms: BTreeMap<String, HistogramReport>,
}

impl MetricsSnapshot {
    /// A counter's value, or 0 when it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the human-readable metrics table the CLI prints on stderr.
    /// Histogram quantities are labeled in milliseconds (values are recorded
    /// in microseconds by the span timers).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<34} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<34} {v:>12.2}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "phase timings [ms]:\n  {:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "span", "count", "mean", "p50", "p90", "p99"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<34} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    name,
                    h.count,
                    h.mean / 1000.0,
                    h.p50 / 1000.0,
                    h.p90 / 1000.0,
                    h.p99 / 1000.0
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        c.add(4);
        // Same name resolves to the same cell.
        assert_eq!(reg.counter("x").get(), 5);
        let g = reg.gauge("y");
        g.set(2.5);
        assert_eq!(reg.gauge("y").get(), 2.5);
    }

    #[test]
    fn counters_are_thread_safe() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move || {
                    // Resolve through the registry to exercise the map lock.
                    let c = reg.counter("concurrent");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                    reg.histogram("concurrent.h").record(1.0);
                });
            }
        });
        assert_eq!(reg.counter("concurrent").get(), threads * per_thread);
        assert_eq!(reg.histogram("concurrent.h").count(), threads);
    }

    #[test]
    fn default_bounds_are_strictly_increasing() {
        let b = default_bounds();
        assert_eq!(b.len(), 27);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b[0], 1.0);
    }

    #[test]
    fn histogram_buckets_values_correctly() {
        let h = Histogram::with_bounds(vec![10.0, 100.0, 1000.0]);
        for v in [5.0, 10.0, 11.0, 99.0, 100.0, 500.0, 5000.0] {
            h.record(v);
        }
        let s = h.snapshot();
        // Bounds are inclusive upper edges: v <= bound lands in the bucket.
        assert_eq!(s.buckets, vec![2, 3, 1, 1]);
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 5725);
    }

    #[test]
    fn quantiles_interpolate_uniform_data() {
        let h = Histogram::detached();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let s = h.snapshot();
        for (q, expected) in [(0.50, 500.0), (0.90, 900.0), (0.99, 990.0)] {
            let got = s.quantile(q);
            let err = (got - expected).abs() / expected;
            assert!(err < 0.05, "q={q}: got {got}, want ~{expected}");
        }
        assert_eq!(s.quantile(0.0), 0.0);
        assert!(s.quantile(1.0) >= 1000.0 - 1e-9);
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = Histogram::detached().snapshot();
        assert_eq!(empty.quantile(0.5), 0.0);
        // Everything in the overflow bucket: report the last bound.
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.record(100.0);
        assert_eq!(h.snapshot().quantile(0.5), 2.0);
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("dns.cause.preferred").add(42);
        reg.gauge("scenario.sessions_per_sec").set(123.75);
        reg.histogram("scenario.build").record(88_000.0);
        let snap = reg.snapshot();
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("dns.cause.preferred"), 42);
        assert_eq!(back.counter("never.touched"), 0);
        let h = &back.histograms["scenario.build"];
        assert_eq!(h.count, 1);
        assert!(h.p50 > 0.0 && h.p50 <= 100_000.0);
    }

    #[test]
    fn render_table_mentions_every_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.cache_miss").inc();
        reg.gauge("scenario.sessions_per_sec").set(9.0);
        reg.histogram("run.EU2").record(1500.0);
        let table = reg.snapshot().render_table();
        assert!(table.contains("engine.cache_miss"), "{table}");
        assert!(table.contains("scenario.sessions_per_sec"), "{table}");
        assert!(table.contains("run.EU2"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }
}
