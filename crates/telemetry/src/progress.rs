//! A minimal progress reporter.
//!
//! Binaries in this workspace keep stdout machine-parseable (data only);
//! every human-facing diagnostic goes through a [`Progress`] to stderr,
//! where it can be silenced globally with the `YTCDN_QUIET` environment
//! variable (any non-empty value) or per-instance with
//! [`Progress::quiet`].

/// Writes human-facing progress lines to stderr.
#[derive(Debug, Clone, Copy)]
pub struct Progress {
    enabled: bool,
}

impl Default for Progress {
    fn default() -> Self {
        Self::stderr()
    }
}

impl Progress {
    /// A reporter that prints to stderr unless `YTCDN_QUIET` is set to a
    /// non-empty value.
    pub fn stderr() -> Self {
        let quiet = std::env::var_os("YTCDN_QUIET").is_some_and(|v| !v.is_empty());
        Self { enabled: !quiet }
    }

    /// A reporter that prints nothing.
    pub fn quiet() -> Self {
        Self { enabled: false }
    }

    /// Whether notes are printed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Prints one diagnostic line to stderr.
    pub fn note(&self, msg: &str) {
        if self.enabled {
            eprintln!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_reporter_is_disabled() {
        assert!(!Progress::quiet().is_enabled());
        // Must not panic.
        Progress::quiet().note("invisible");
    }
}
