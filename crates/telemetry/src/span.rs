//! Scoped span timers for phase profiling.
//!
//! A [`Span`] measures wall-clock time between creation and drop. On drop it
//! records the elapsed microseconds into the histogram named after the span
//! and emits an [`Event::Phase`] through the owning [`Telemetry`] handle.
//! Spans on a disabled handle never read the clock.

use std::time::Instant;

use crate::event::Event;
use crate::Telemetry;

/// An in-flight phase measurement. Created by [`Telemetry::span`].
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
#[derive(Debug)]
pub struct Span {
    telemetry: Telemetry,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    pub(crate) fn start(telemetry: &Telemetry, name: &'static str) -> Self {
        // ytcdn-lint: allow(DET002) — span timers read host wall-clock by design; profiling only, never simulation state or dataset bytes
        let start = telemetry.is_enabled().then(Instant::now);
        Self {
            telemetry: telemetry.clone(),
            name,
            start,
        }
    }

    /// Elapsed wall-clock microseconds, or `None` on a disabled handle.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start.map(|s| s.elapsed().as_micros() as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let wall_us = start.elapsed().as_micros() as u64;
        self.telemetry.histogram(self.name).record(wall_us as f64);
        self.telemetry.emit(|| Event::Phase {
            name: self.name.to_owned(),
            wall_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::sink::RingBufferSink;

    #[test]
    fn span_records_histogram_and_event() {
        let ring = Arc::new(RingBufferSink::new(16));
        let tel = Telemetry::with_sink(Arc::clone(&ring) as Arc<dyn crate::Sink>);
        {
            let _span = tel.span("test.phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = tel.metrics_snapshot().expect("enabled");
        let h = &snap.histograms["test.phase"];
        assert_eq!(h.count, 1);
        assert!(h.sum >= 1_000, "slept >=1ms, recorded {}us", h.sum);
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        match &events[0].event {
            Event::Phase { name, wall_us } => {
                assert_eq!(name, "test.phase");
                assert!(*wall_us >= 1_000);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn disabled_span_is_inert() {
        let tel = Telemetry::disabled();
        let span = tel.span("never");
        assert_eq!(span.elapsed_us(), None);
        drop(span);
        assert!(tel.metrics_snapshot().is_none());
    }
}
