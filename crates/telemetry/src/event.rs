//! The structured event taxonomy.
//!
//! Every observable decision the simulator and analysis pipeline make is
//! described by one [`Event`] variant. Events are deliberately defined in
//! terms of plain integers and strings — not the simulator's own types — so
//! this crate sits below every other crate in the workspace and the JSONL
//! form is stable against refactors of the simulator.

use serde::{Deserialize, Serialize};

/// Why a DNS resolution picked the data center it picked.
///
/// Mirrors the simulator's `DnsCause` ground truth (preferred mapping,
/// adaptive load balancing, background mapping noise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DnsCauseKind {
    /// The LDNS's preferred data center answered.
    Preferred,
    /// Adaptive load balancing spilled the query to an alternate.
    LoadBalanced,
    /// Background mapping noise sent the query to a random alternate.
    Noise,
}

impl DnsCauseKind {
    /// All variants, in declaration order.
    pub const ALL: [DnsCauseKind; 3] = [
        DnsCauseKind::Preferred,
        DnsCauseKind::LoadBalanced,
        DnsCauseKind::Noise,
    ];

    /// The metrics-registry counter name for this cause.
    pub fn counter_name(self) -> &'static str {
        match self {
            DnsCauseKind::Preferred => "dns.cause.preferred",
            DnsCauseKind::LoadBalanced => "dns.cause.load_balanced",
            DnsCauseKind::Noise => "dns.cause.noise",
        }
    }
}

/// Why an application-layer redirect happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RedirectKind {
    /// The contacted data center lacked the video; the client was sent to a
    /// replica (possibly back to its preferred data center).
    ContentMiss,
    /// A content-miss redirect guessed the wrong holder first, producing a
    /// 3-flow chain.
    WrongGuess,
    /// A saturated single-video cache host shed the request to another data
    /// center holding the content.
    Overload,
}

impl RedirectKind {
    /// The metrics-registry counter name for this redirect kind.
    pub fn counter_name(self) -> &'static str {
        match self {
            RedirectKind::ContentMiss => "engine.redirect.content_miss",
            RedirectKind::WrongGuess => "engine.redirect.wrong_guess",
            RedirectKind::Overload => "engine.redirect.overload",
        }
    }
}

/// One structured telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum Event {
    /// A DNS resolution was answered.
    DnsResolution {
        /// Simulated time of the query, ms since trace start.
        t_ms: u64,
        /// Index of the local DNS server within the vantage network.
        ldns: u64,
        /// Index of the data center the answer points at.
        dc: u64,
        /// Why this data center was chosen.
        cause: DnsCauseKind,
    },
    /// A content server answered with a redirect instead of the video.
    Redirect {
        /// Simulated time of the session, ms since trace start.
        t_ms: u64,
        /// What triggered the redirect.
        kind: RedirectKind,
        /// The data center that redirected.
        from_dc: u64,
        /// The data center the client was sent to.
        to_dc: u64,
    },
    /// A session hit a data center that does not hold the requested video
    /// (pull-through cache miss).
    CacheMiss {
        /// Simulated time, ms since trace start.
        t_ms: u64,
        /// The data center that missed.
        dc: u64,
        /// Popularity rank of the video (lower = more popular).
        video_rank: u64,
    },
    /// A video was pulled into a data center after a miss.
    Replication {
        /// Simulated time, ms since trace start.
        t_ms: u64,
        /// The data center the video was replicated into.
        dc: u64,
        /// Popularity rank of the video.
        video_rank: u64,
    },
    /// A profiled phase (span) completed.
    Phase {
        /// Span name, e.g. `scenario.build` or `run.EU1-ADSL`.
        name: String,
        /// Wall-clock duration in microseconds.
        wall_us: u64,
    },
    /// Windowed SLO metrics of one analysis window (the watch workload):
    /// session metrics plus the constellation distance to the previous
    /// (active) window.
    WindowMetrics {
        /// Zero-based window ordinal within the trace.
        window: u64,
        /// First trace hour the window covers.
        start_hour: u64,
        /// One past the last trace hour the window covers.
        end_hour: u64,
        /// Flows starting in the window.
        flows: u64,
        /// Sessions starting in the window.
        sessions: u64,
        /// Analysis bytes served in the window.
        bytes: u64,
        /// Median first-flow duration of the window's sessions, ms (the
        /// startup-RTT proxy).
        startup_ms_p50: f64,
        /// 90th-percentile first-flow duration, ms.
        startup_ms_p90: f64,
        /// 99th-percentile first-flow duration, ms.
        startup_ms_p99: f64,
        /// Fraction of the window's video flows served by a non-preferred
        /// data center.
        non_preferred_fraction: f64,
        /// Median of the window's per-data-center byte totals.
        dc_bytes_p50: f64,
        /// 90th percentile of the per-data-center byte totals.
        dc_bytes_p90: f64,
        /// 99th percentile of the per-data-center byte totals.
        dc_bytes_p99: f64,
        /// Server /24 clusters (the constellation) observed in the window.
        clusters: u64,
        /// Total-variation distance of the cluster byte shares against the
        /// previous active window (0 for the first window).
        constellation_distance: f64,
    },
    /// The constellation detector flagged a CDN reconfiguration.
    ChangePointDetected {
        /// Window ordinal whose constellation shifted.
        window: u64,
        /// First trace hour of that window (the detection timestamp).
        hour: u64,
        /// The constellation distance that crossed the threshold.
        distance: f64,
        /// Comma-separated cities of the data centers whose byte share
        /// moved the most.
        affected: String,
    },
}

/// An event plus the scope (usually the dataset / vantage point) it was
/// recorded under. This is the unit sinks receive and the JSONL line format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// The scope label, e.g. `"EU1-ADSL"`; `None` for global events.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub scope: Option<String>,
    /// The event itself.
    #[serde(flatten)]
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_counter_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            DnsCauseKind::ALL.iter().map(|c| c.counter_name()).collect();
        assert_eq!(names.len(), DnsCauseKind::ALL.len());
    }

    #[test]
    fn events_round_trip_through_serde() {
        let records = vec![
            TelemetryRecord {
                scope: Some("EU1-ADSL".to_owned()),
                event: Event::DnsResolution {
                    t_ms: 1234,
                    ldns: 0,
                    dc: 7,
                    cause: DnsCauseKind::LoadBalanced,
                },
            },
            TelemetryRecord {
                scope: None,
                event: Event::Redirect {
                    t_ms: 99,
                    kind: RedirectKind::WrongGuess,
                    from_dc: 1,
                    to_dc: 2,
                },
            },
            TelemetryRecord {
                scope: Some("EU2".to_owned()),
                event: Event::CacheMiss {
                    t_ms: 5,
                    dc: 3,
                    video_rank: 900_001,
                },
            },
            TelemetryRecord {
                scope: Some("EU2".to_owned()),
                event: Event::Replication {
                    t_ms: 5,
                    dc: 3,
                    video_rank: 900_001,
                },
            },
            TelemetryRecord {
                scope: None,
                event: Event::Phase {
                    name: "scenario.build".to_owned(),
                    wall_us: 88_000,
                },
            },
            TelemetryRecord {
                scope: Some("EU1-FTTH".to_owned()),
                event: Event::WindowMetrics {
                    window: 12,
                    start_hour: 72,
                    end_hour: 78,
                    flows: 4_321,
                    sessions: 3_000,
                    bytes: 9_876_543,
                    startup_ms_p50: 310.0,
                    startup_ms_p90: 950.5,
                    startup_ms_p99: 2_400.0,
                    non_preferred_fraction: 0.11,
                    dc_bytes_p50: 1_000.0,
                    dc_bytes_p90: 250_000.0,
                    dc_bytes_p99: 9_000_000.0,
                    clusters: 14,
                    constellation_distance: 0.42,
                },
            },
            TelemetryRecord {
                scope: Some("EU1-FTTH".to_owned()),
                event: Event::ChangePointDetected {
                    window: 12,
                    hour: 72,
                    distance: 0.42,
                    affected: "Milan, Paris".to_owned(),
                },
            },
        ];
        for rec in records {
            let line = serde_json::to_string(&rec).unwrap();
            let back: TelemetryRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, rec, "{line}");
        }
    }

    #[test]
    fn jsonl_line_is_flat_and_tagged() {
        let rec = TelemetryRecord {
            scope: Some("US-Campus".to_owned()),
            event: Event::DnsResolution {
                t_ms: 0,
                ldns: 1,
                dc: 4,
                cause: DnsCauseKind::Preferred,
            },
        };
        let line = serde_json::to_string(&rec).unwrap();
        assert!(line.contains("\"event\":\"dns_resolution\""), "{line}");
        assert!(line.contains("\"cause\":\"preferred\""), "{line}");
        assert!(line.contains("\"scope\":\"US-Campus\""), "{line}");
    }
}
