//! Golden schema of the telemetry JSONL stream.
//!
//! The JSONL sink is the crate's external interface: dashboards and ad-hoc
//! `jq` pipelines key on exact field names and JSON types. These tests emit
//! one record of every [`Event`] variant through a real [`JsonlSink`] and
//! pin, per variant, the exact key set and the JSON type of every value.
//! Renaming, removing, or retyping a field fails here first — bump the
//! consumers together with this golden, never silently.
//!
//! Gated behind the `golden-schema` feature: parsing the stream back
//! needs the real `serde_json::Value`, which the offline stub does not
//! provide. CI runs `cargo test -p ytcdn-telemetry --test golden_schema
//! --features golden-schema`; the offline harness skips it.

use std::sync::Arc;

use ytcdn_telemetry::{DnsCauseKind, Event, JsonlSink, RedirectKind, Telemetry};

/// Every variant once, with a scope, in a fixed order.
fn one_of_each() -> Vec<Event> {
    vec![
        Event::DnsResolution {
            t_ms: 1_234,
            ldns: 0,
            dc: 7,
            cause: DnsCauseKind::LoadBalanced,
        },
        Event::Redirect {
            t_ms: 99,
            kind: RedirectKind::WrongGuess,
            from_dc: 1,
            to_dc: 2,
        },
        Event::CacheMiss {
            t_ms: 5,
            dc: 3,
            video_rank: 900_001,
        },
        Event::Replication {
            t_ms: 6,
            dc: 3,
            video_rank: 900_001,
        },
        Event::Phase {
            name: "scenario.build".to_owned(),
            wall_us: 88_000,
        },
        Event::WindowMetrics {
            window: 12,
            start_hour: 72,
            end_hour: 78,
            flows: 4_321,
            sessions: 3_000,
            bytes: 9_876_543,
            startup_ms_p50: 310.0,
            startup_ms_p90: 950.5,
            startup_ms_p99: 2_400.0,
            non_preferred_fraction: 0.11,
            dc_bytes_p50: 1_000.0,
            dc_bytes_p90: 250_000.0,
            dc_bytes_p99: 9_000_000.0,
            clusters: 14,
            constellation_distance: 0.42,
        },
        Event::ChangePointDetected {
            window: 12,
            hour: 72,
            distance: 0.42,
            affected: "Zurich, Milan".to_owned(),
        },
    ]
}

/// `(tag, [(field, json type)])` for every variant, `scope` included.
/// "uint" means a non-negative integer with no fractional part; "float"
/// accepts any JSON number.
const GOLDEN: &[(&str, &[(&str, &str)])] = &[
    (
        "dns_resolution",
        &[
            ("scope", "string"),
            ("t_ms", "uint"),
            ("ldns", "uint"),
            ("dc", "uint"),
            ("cause", "string"),
        ],
    ),
    (
        "redirect",
        &[
            ("scope", "string"),
            ("t_ms", "uint"),
            ("kind", "string"),
            ("from_dc", "uint"),
            ("to_dc", "uint"),
        ],
    ),
    (
        "cache_miss",
        &[
            ("scope", "string"),
            ("t_ms", "uint"),
            ("dc", "uint"),
            ("video_rank", "uint"),
        ],
    ),
    (
        "replication",
        &[
            ("scope", "string"),
            ("t_ms", "uint"),
            ("dc", "uint"),
            ("video_rank", "uint"),
        ],
    ),
    (
        "phase",
        &[("scope", "string"), ("name", "string"), ("wall_us", "uint")],
    ),
    (
        "window_metrics",
        &[
            ("scope", "string"),
            ("window", "uint"),
            ("start_hour", "uint"),
            ("end_hour", "uint"),
            ("flows", "uint"),
            ("sessions", "uint"),
            ("bytes", "uint"),
            ("startup_ms_p50", "float"),
            ("startup_ms_p90", "float"),
            ("startup_ms_p99", "float"),
            ("non_preferred_fraction", "float"),
            ("dc_bytes_p50", "float"),
            ("dc_bytes_p90", "float"),
            ("dc_bytes_p99", "float"),
            ("clusters", "uint"),
            ("constellation_distance", "float"),
        ],
    ),
    (
        "change_point_detected",
        &[
            ("scope", "string"),
            ("window", "uint"),
            ("hour", "uint"),
            ("distance", "float"),
            ("affected", "string"),
        ],
    ),
];

fn type_matches(v: &serde_json::Value, ty: &str) -> bool {
    match ty {
        "string" => v.is_string(),
        "uint" => v.is_u64(),
        "float" => v.is_number(),
        other => panic!("unknown golden type {other:?}"),
    }
}

/// Writes one record per variant through the real sink and returns the
/// parsed lines.
fn emitted_lines() -> Vec<serde_json::Value> {
    let dir = std::env::temp_dir().join(format!("ytcdn-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");
    {
        let sink = JsonlSink::create(&path).unwrap();
        let telemetry = Telemetry::with_sink(Arc::new(sink)).with_scope("EU1-FTTH");
        for event in one_of_each() {
            telemetry.emit(|| event.clone());
        }
        telemetry.flush().unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    text.lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect()
}

#[test]
fn every_variant_matches_the_golden_schema() {
    let lines = emitted_lines();
    assert_eq!(lines.len(), GOLDEN.len(), "one line per variant");
    for (line, (tag, fields)) in lines.iter().zip(GOLDEN) {
        let obj = line
            .as_object()
            .unwrap_or_else(|| panic!("not an object: {line}"));
        assert_eq!(
            obj.get("event").and_then(|v| v.as_str()),
            Some(*tag),
            "tag of {line}"
        );
        let mut expected: Vec<&str> = fields.iter().map(|(f, _)| *f).collect();
        expected.push("event");
        expected.sort_unstable();
        let mut actual: Vec<&str> = obj.keys().map(String::as_str).collect();
        actual.sort_unstable();
        assert_eq!(actual, expected, "key set of {tag}");
        for (field, ty) in *fields {
            let v = &obj[*field];
            assert!(type_matches(v, ty), "{tag}.{field} should be {ty}, got {v}");
        }
    }
}

#[test]
fn metric_like_names_stay_lowercase_dotted() {
    // The event tags double as stream filters; keep them machine-friendly.
    for (tag, _) in GOLDEN {
        assert!(
            tag.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.'),
            "tag {tag:?} is not lowercase [a-z0-9_.]"
        );
    }
}
