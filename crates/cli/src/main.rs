//! `ytcdn` — command-line interface to the YouTube CDN reproduction.
//!
//! ```text
//! ytcdn generate --dataset EU1-ADSL --scale 0.05 --out trace.jsonl
//! ytcdn analyze  --trace trace.jsonl --scale 0.05
//! ytcdn geolocate --dataset EU1-Campus --landmarks 50
//! ytcdn whatif   --scenario feb2011
//! ```
//!
//! `generate` writes a Tstat-style JSON-lines flow log — or, with
//! `--out dataset.ytc`, one compact columnar file carrying every generated
//! dataset plus its provenance (see `ytcdn_core::columnar`); `analyze`
//! re-reads a trace (from `generate` or any tool emitting the same schema)
//! and runs the paper's methodology on it; `geolocate` runs CBG over a
//! dataset's servers; `whatif` evaluates the counterfactuals of
//! [`ytcdn_core::whatif`]; `watch --from dataset.ytc` detects CDN changes
//! straight off a columnar file, skipping simulation.

#![forbid(unsafe_code)]
// Tables and analysis results go to stdout: that is this binary's product.
#![allow(clippy::print_stdout)]

use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

mod args;

use args::{Command, ParseError, TelemetryOpts};
use ytcdn_cdnsim::{MutationSpec, ScenarioConfig, StandardScenario};
use ytcdn_core::perf::perf_report;
use ytcdn_core::whatif;
use ytcdn_core::{AnalysisContext, DatasetIndex, WatchConfig, WatchReport, YtcFile, YtcHeader};
use ytcdn_geoloc::{cluster_by_city, Cbg};
use ytcdn_geomodel::CityDb;
use ytcdn_telemetry::{JsonlSink, Progress, Telemetry};
use ytcdn_tstat::{Dataset, DatasetName};

/// Everything a subcommand needs besides its own flags: the telemetry
/// handle (disabled unless `--telemetry`/`--metrics-out` was given) and the
/// stderr progress reporter. Stdout stays data-only.
struct Ctx {
    telemetry: Telemetry,
    progress: Progress,
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let inv = match args::parse(&argv) {
        Ok(inv) => inv,
        Err(ParseError::Help) => {
            eprintln!("{}", args::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let telemetry = match build_telemetry(&inv.telemetry) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ctx = Ctx {
        telemetry,
        progress: Progress::stderr(),
    };
    let code = run(inv.command, &ctx);
    if let Err(e) = finish_telemetry(&inv.telemetry, &ctx.telemetry) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    code
}

/// The handle the invocation asked for: a JSONL event stream when
/// `--telemetry PATH` is given, metrics-only when just `--metrics-out`,
/// disabled otherwise.
fn build_telemetry(opts: &TelemetryOpts) -> Result<Telemetry, String> {
    match &opts.events {
        Some(path) => {
            let sink = JsonlSink::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            Ok(Telemetry::with_sink(Arc::new(sink)))
        }
        None if opts.metrics.is_some() => Ok(Telemetry::metrics_only()),
        None => Ok(Telemetry::disabled()),
    }
}

/// Flushes the event sink, writes the metrics JSON, and prints the
/// human-readable metrics table on stderr.
fn finish_telemetry(opts: &TelemetryOpts, telemetry: &Telemetry) -> Result<(), String> {
    if !opts.enabled() {
        return Ok(());
    }
    telemetry
        .flush()
        .map_err(|e| format!("cannot flush telemetry: {e}"))?;
    let Some(snapshot) = telemetry.metrics_snapshot() else {
        return Ok(());
    };
    if let Some(path) = &opts.metrics {
        let json = serde_json::to_string_pretty(&snapshot).expect("metrics snapshot serializes");
        std::fs::write(path, json + "\n")
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    eprint!("{}", snapshot.render_table());
    Ok(())
}

fn run(cmd: Command, ctx: &Ctx) -> ExitCode {
    match cmd {
        Command::Generate {
            dataset,
            scale,
            seed,
            out,
            format,
            shards,
            mutate,
        } => match mutated_scenario(scale, seed, &mutate, ctx) {
            Ok(s) => generate(
                s,
                dataset,
                out,
                format,
                resolve_shards(shards),
                YtcHeader {
                    scale,
                    seed,
                    mutations: mutate,
                },
                ctx,
            ),
            Err(code) => code,
        },
        Command::Analyze { trace, scale, seed } => analyze(&trace, scale, seed, ctx),
        Command::Geolocate {
            dataset,
            scale,
            seed,
            landmarks,
            shards,
            jobs,
        } => geolocate(
            dataset,
            scale,
            seed,
            landmarks,
            resolve_shards(shards),
            resolve_shards(jobs),
            ctx,
        ),
        Command::WhatIf {
            scenario,
            scale,
            seed,
        } => what_if(&scenario, scale, seed, ctx),
        Command::Watch {
            dataset,
            scale,
            seed,
            shards,
            mutate,
            window,
            threshold,
            min_flows,
            from,
        } => {
            let config = WatchConfig {
                window_hours: window,
                threshold,
                min_flows,
            };
            match from {
                Some(path) => watch_from(&path, dataset, config, ctx),
                None => match mutated_scenario(scale, seed, &mutate, ctx) {
                    Ok(s) => watch(s, dataset, resolve_shards(shards), config, ctx),
                    Err(code) => code,
                },
            }
        }
        Command::Characterize { trace } => characterize_trace(&trace),
        Command::World { scale, seed } => describe_world(scale, seed, ctx),
        Command::Anonymize { trace, out, seed } => anonymize_trace(&trace, &out, seed, ctx),
    }
}

fn describe_world(scale: f64, seed: u64, ctx: &Ctx) -> ExitCode {
    let s = scenario(scale, seed, ctx);
    for name in DatasetName::ALL {
        println!("{}", s.world().describe(name));
    }
    ExitCode::SUCCESS
}

fn anonymize_trace(trace: &PathBuf, out: &PathBuf, seed: u64, ctx: &Ctx) -> ExitCode {
    let ds = match read_trace(trace) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };
    let anon = ytcdn_tstat::Anonymizer::new(seed).anonymize_dataset(&ds);
    let file = match std::fs::File::create(out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    let write = {
        let _span = ctx.telemetry.span("export");
        anon.write_jsonl(BufWriter::new(file))
    };
    if let Err(e) = write {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    ctx.progress.note(&format!(
        "anonymized {} flows ({} distinct clients) into {}",
        anon.len(),
        anon.client_ips().len(),
        out.display()
    ));
    ExitCode::SUCCESS
}

fn read_trace(trace: &PathBuf) -> Result<Dataset, String> {
    let file =
        std::fs::File::open(trace).map_err(|e| format!("cannot open {}: {e}", trace.display()))?;
    let mut reader = BufReader::new(file);
    // Sniff the first bytes: `#` opens a Tstat text log, the YTCF magic a
    // columnar file, anything else is treated as JSONL.
    let (is_text, is_ytc) = {
        use std::io::BufRead as _;
        reader
            .fill_buf()
            .map(|b| {
                (
                    b.first() == Some(&b'#'),
                    b.starts_with(&ytcdn_core::columnar::MAGIC),
                )
            })
            .unwrap_or((false, false))
    };
    if is_ytc {
        let file = YtcFile::read_from(reader, &Telemetry::disabled()).map_err(|e| e.to_string())?;
        let mut datasets = file.into_datasets();
        if datasets.len() != 1 {
            return Err(format!(
                "{} carries {} datasets; this command reads exactly one \
                 (generate it with --dataset NAME)",
                trace.display(),
                datasets.len()
            ));
        }
        datasets.pop().ok_or_else(|| "empty .ytc file".to_owned())
    } else if is_text {
        ytcdn_tstat::read_textlog(reader).map_err(|e| e.to_string())
    } else {
        Dataset::read_jsonl(reader).map_err(|e| e.to_string())
    }
}

fn characterize_trace(trace: &PathBuf) -> ExitCode {
    let ds = match read_trace(trace) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };
    println!("{}", ds.summary());
    let c = ytcdn_core::characterize::characterize(&ds);
    println!(
        "videos requested exactly once: {:.1}%",
        100.0 * c.single_request_video_fraction
    );
    println!(
        "top-1% most-requested videos carry {:.1}% of video flows",
        100.0 * c.top1pct_video_share
    );
    println!(
        "top-10% heaviest clients carry {:.1}% of bytes",
        100.0 * c.top10pct_client_share
    );
    println!("busiest/quietest hour ratio: {:.1}", c.peak_to_trough);
    ExitCode::SUCCESS
}

/// `--shards` default: one worker per available CPU. The shard count only
/// affects wall-clock time — output is byte-identical for any value.
fn resolve_shards(flag: Option<usize>) -> usize {
    flag.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Builds the standard scenario with the invocation's telemetry attached
/// (build phase profiled, engines instrumented per dataset).
fn scenario(scale: f64, seed: u64, ctx: &Ctx) -> StandardScenario {
    StandardScenario::build_instrumented(
        ScenarioConfig::with_scale(scale, seed),
        ctx.telemetry.clone(),
    )
}

/// Builds the standard scenario and installs every `--mutate` spec as a
/// compiled schedule. Any malformed spec or unknown city is reported here
/// and the subcommand exits without running.
fn mutated_scenario(
    scale: f64,
    seed: u64,
    specs: &[String],
    ctx: &Ctx,
) -> Result<StandardScenario, ExitCode> {
    let mut s = scenario(scale, seed, ctx);
    let parsed: Result<Vec<MutationSpec>, String> = specs
        .iter()
        .map(|spec| spec.parse().map_err(|e| format!("{e}")))
        .collect();
    let installed = parsed.and_then(|specs| {
        if specs.is_empty() {
            Ok(())
        } else {
            s.set_mutations(&specs).map_err(|e| format!("{e}"))
        }
    });
    match installed {
        Ok(()) => Ok(s),
        Err(e) => {
            eprintln!("error: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn generate(
    s: StandardScenario,
    dataset: Option<DatasetName>,
    out: PathBuf,
    format: args::TraceFormat,
    shards: usize,
    header: YtcHeader,
    ctx: &Ctx,
) -> ExitCode {
    let ext = match format {
        args::TraceFormat::Jsonl => "jsonl",
        args::TraceFormat::Text => "log",
        args::TraceFormat::Ytc => "ytc",
    };
    let datasets: Vec<Dataset> = match dataset {
        Some(n) if shards == 1 => vec![s.run(n)],
        Some(n) => vec![s.run_sharded(n, shards)],
        None if shards == 1 => s.run_all(),
        None => s.run_all_sharded(shards),
    };
    if format == args::TraceFormat::Ytc {
        // The columnar format is one file carrying every generated dataset
        // plus its provenance — `out` is always a file path here.
        return generate_ytc(header, datasets, &out, ctx);
    }
    let export_span = ctx.telemetry.span("export");
    for ds in datasets {
        let name = ds.name();
        let path = if names_len(dataset) == 1 {
            out.clone()
        } else {
            out.join(format!("{name}.{ext}"))
        };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot create {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let write_result = match format {
            args::TraceFormat::Jsonl => ds
                .write_jsonl(BufWriter::new(file))
                .map_err(|e| e.to_string()),
            args::TraceFormat::Text => {
                ytcdn_tstat::write_textlog(&ds, BufWriter::new(file)).map_err(|e| e.to_string())
            }
            args::TraceFormat::Ytc => unreachable!("ytc takes the single-file path above"),
        };
        if let Err(e) = write_result {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        ctx.progress
            .note(&format!("wrote {} ({} flows)", path.display(), ds.len()));
    }
    drop(export_span);
    ExitCode::SUCCESS
}

/// Writes every generated dataset into one checksummed `.ytc` file. The
/// encoding is deterministic, so the same scale/seed/mutations produce
/// byte-identical files whatever `--shards` was.
fn generate_ytc(header: YtcHeader, datasets: Vec<Dataset>, out: &PathBuf, ctx: &Ctx) -> ExitCode {
    let file = match YtcFile::new(header, datasets) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(parent) = out.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let target = match std::fs::File::create(out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    match file.write_to(BufWriter::new(target), &ctx.telemetry) {
        Ok(bytes) => {
            ctx.progress.note(&format!(
                "wrote {} ({} bytes, {} flows across {} datasets)",
                out.display(),
                bytes,
                file.total_flows(),
                file.datasets().len()
            ));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}

/// `ytcdn watch --from`: load one dataset off a `.ytc` file instead of
/// simulating. The world is rebuilt from the scale/seed/mutations recorded
/// in the file's header (any `--scale`/`--seed` flags are superseded), so
/// the change-point table is byte-identical to the simulate-then-watch
/// path that produced the file.
fn watch_from(path: &PathBuf, dataset: DatasetName, config: WatchConfig, ctx: &Ctx) -> ExitCode {
    let source = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let file = match YtcFile::read_from(BufReader::new(source), &ctx.telemetry) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let columnar = match file.dataset(dataset) {
        Ok(c) => c.clone(),
        Err(e) => {
            eprintln!("error: {e} in {}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let header = file.header.clone();
    ctx.progress.note(&format!(
        "loaded {} ({} flows) from {} — scale {}, seed {}, {} mutation(s); skipping simulation",
        dataset,
        columnar.dataset().len(),
        path.display(),
        header.scale,
        header.seed,
        header.mutations.len()
    ));
    let s = match mutated_scenario(header.scale, header.seed, &header.mutations, ctx) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let _span = ctx.telemetry.span("analysis.watch");
    let actx = AnalysisContext::from_ground_truth(s.world(), columnar.dataset());
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let index = DatasetIndex::from_columnar(&actx, &columnar, jobs, ctx.telemetry.clone());
    let report = match WatchReport::build(&actx, columnar.dataset(), &index, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    report.emit(&ctx.telemetry.with_scope(dataset.as_str()));
    println!("{}", report.render_table());
    ExitCode::SUCCESS
}

/// `ytcdn watch`: simulate one dataset (optionally with scheduled
/// mutations), window it, and print the change-point table. Windowed
/// metrics and detected change points also go to the telemetry stream when
/// `--telemetry` is given, scoped to the dataset name.
fn watch(
    s: StandardScenario,
    dataset: DatasetName,
    shards: usize,
    config: WatchConfig,
    ctx: &Ctx,
) -> ExitCode {
    let ds = if shards == 1 {
        s.run(dataset)
    } else {
        s.run_sharded(dataset, shards)
    };
    let _span = ctx.telemetry.span("analysis.watch");
    let actx = AnalysisContext::from_ground_truth(s.world(), &ds);
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let index = DatasetIndex::build(&actx, &ds, jobs, ctx.telemetry.clone());
    let report = match WatchReport::build(&actx, &ds, &index, config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    report.emit(&ctx.telemetry.with_scope(dataset.as_str()));
    println!("{}", report.render_table());
    ExitCode::SUCCESS
}

fn names_len(dataset: Option<DatasetName>) -> usize {
    if dataset.is_some() {
        1
    } else {
        DatasetName::ALL.len()
    }
}

fn analyze(trace: &PathBuf, scale: f64, seed: u64, cli: &Ctx) -> ExitCode {
    let ds = match read_trace(trace) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };
    let s = scenario(scale, seed, cli);
    println!("{}", ds.summary());

    let _span = cli.telemetry.span("analysis.trace");
    let ctx = AnalysisContext::from_ground_truth(s.world(), &ds);
    println!(
        "preferred data center: {} (RTT {:.1} ms, {:.0} km), {:.1}% of video bytes",
        ctx.preferred().city_name,
        ctx.preferred().rtt_ms,
        ctx.preferred().distance_km,
        100.0 * ctx.preferred_share_of_bytes()
    );
    println!(
        "non-preferred share of video flows: {:.1}%",
        100.0 * ctx.nonpreferred_share_of_flows()
    );

    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let index = DatasetIndex::build(&ctx, &ds, jobs, cli.telemetry.clone());
    let st = index.patterns();
    println!(
        "sessions: {} total, {:.1}% single-flow ({:.1}% of those to non-preferred DCs)",
        st.total,
        100.0 * st.single_flow_fraction(),
        100.0 * st.one_flow_non_preferred_fraction()
    );
    println!(
        "2-flow patterns: pp={} pn={} np={} nn={}",
        st.two_flow.pp, st.two_flow.pn, st.two_flow.np, st.two_flow.nn
    );

    let perf = perf_report(&ctx, &ds, index.sessions());
    println!(
        "performance: median redirect startup penalty {:.0} ms, median non-preferred RTT penalty {:.1} ms",
        perf.median_redirect_penalty_ms(),
        perf.median_rtt_penalty_ms()
    );
    ExitCode::SUCCESS
}

fn geolocate(
    dataset: DatasetName,
    scale: f64,
    seed: u64,
    landmarks: usize,
    shards: usize,
    jobs: usize,
    ctx: &Ctx,
) -> ExitCode {
    let s = scenario(scale, seed, ctx);
    let ds = if shards == 1 {
        s.run(dataset)
    } else {
        s.run_sharded(dataset, shards)
    };
    ctx.progress.note(&format!(
        "calibrating CBG on {landmarks} landmarks, geolocating {} servers…",
        ds.server_ips().len()
    ));
    let _span = ctx.telemetry.span("analysis.geolocate");
    let spec = scaled_landmark_spec(landmarks);
    let cbg = Cbg::calibrate(
        ytcdn_netsim::landmarks_with_counts(seed, &spec),
        s.world().delay_model(),
        3,
        seed,
    );
    let locations =
        ytcdn_core::geo_analysis::geolocate_servers_parallel(s.world(), &ds, &cbg, seed, jobs);
    let counts = ytcdn_core::geo_analysis::continent_counts(&locations);
    println!(
        "servers per continent: N.America={} Europe={} Others={}",
        counts.north_america, counts.europe, counts.others
    );
    let estimates: Vec<_> = locations.iter().map(|l| (l.ip, l.cbg.estimate)).collect();
    let clusters = cluster_by_city(&estimates, &CityDb::builtin());
    println!("inferred data centers ({}):", clusters.len());
    for c in &clusters {
        println!("  {:<16} {:>3} representative /24s", c.city_name, c.len());
    }
    ExitCode::SUCCESS
}

fn scaled_landmark_spec(n: usize) -> Vec<(ytcdn_geomodel::Continent, usize)> {
    use ytcdn_geomodel::Continent;
    let total = 215.0;
    [
        (Continent::NorthAmerica, 97.0),
        (Continent::Europe, 82.0),
        (Continent::Asia, 24.0),
        (Continent::SouthAmerica, 8.0),
        (Continent::Oceania, 3.0),
        (Continent::Africa, 1.0),
    ]
    .into_iter()
    .map(|(c, k)| (c, ((k / total * n as f64).round() as usize).max(1)))
    .collect()
}

fn what_if(name: &str, scale: f64, seed: u64, ctx: &Ctx) -> ExitCode {
    let _span = ctx.telemetry.span("analysis.whatif");
    let base = ScenarioConfig::with_scale(scale, seed);
    let outcomes: Vec<whatif::WhatIfOutcome> = match name {
        "feb2011" => {
            let (a, b) = whatif::feb2011_us_campus(base);
            vec![a, b]
        }
        "fixed-peering" => {
            let (a, b) = whatif::fixed_us_peering(base);
            vec![a, b]
        }
        "no-votd" => {
            let (a, b) = whatif::without_votd(base, DatasetName::Eu1Adsl);
            vec![a, b]
        }
        "eu2-capacity" => whatif::eu2_capacity_sweep(base, &[0.5, 1.0, 4.0, 10.0]),
        "popularity" => whatif::popularity_sweep(base, &[0.7, 0.9, 1.2], DatasetName::Eu1Adsl),
        other => {
            eprintln!(
                "unknown scenario {other:?}; known: feb2011, fixed-peering, no-votd, eu2-capacity, popularity"
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<16} {:>14} {:>10} {:>12} {:>15} {:>13}",
        "scenario", "preferred", "dist[km]", "pref bytes", "non-pref flows", "mean RTT[ms]"
    );
    for o in outcomes {
        println!(
            "{:<16} {:>14} {:>10.0} {:>12.3} {:>15.3} {:>13.1}",
            o.label,
            o.preferred_city,
            o.preferred_distance_km,
            o.preferred_byte_share,
            o.nonpreferred_flow_share,
            o.mean_serving_rtt_ms
        );
    }
    ExitCode::SUCCESS
}
