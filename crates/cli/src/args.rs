//! Argument parsing for the `ytcdn` CLI (hand-rolled, no parser crates).

use std::fmt;
use std::path::PathBuf;

use ytcdn_tstat::DatasetName;

/// CLI usage text.
pub const USAGE: &str = "\
ytcdn — the YouTube CDN reproduction toolkit

USAGE:
  ytcdn generate  [--dataset NAME] [--scale S] [--seed N] [--shards K]
                  [--mutate SPEC]... [--format jsonl|text|ytc] --out PATH
                  (PATH is a file for one dataset, a directory for all five —
                  except ytc, where PATH is always one file carrying every
                  generated dataset; a .ytc extension implies --format ytc)
  ytcdn analyze   --trace PATH [--scale S] [--seed N]
  ytcdn geolocate --dataset NAME [--landmarks K] [--scale S] [--seed N] [--shards K]
                  [--jobs K] (CBG worker threads; any K gives byte-identical output)
  ytcdn whatif    --scenario feb2011|fixed-peering|no-votd|eu2-capacity|popularity
                  [--scale S] [--seed N]
  ytcdn watch     --dataset NAME [--scale S] [--seed N] [--shards K]
                  [--mutate SPEC]... [--window H] [--threshold D] [--min-flows F]
                  [--from PATH.ytc]
                  (simulate — or load PATH.ytc, skipping simulation — then
                  detect CDN changes per H-hour window)
  ytcdn characterize --trace PATH
  ytcdn world     [--scale S] [--seed N]
  ytcdn anonymize --trace PATH --out PATH [--seed KEY]

Scheduled mutations (--mutate, repeatable):
  dc-down@H:CITY      decommission the CITY data center at trace hour H
  prefer-flip@H:CITY  flip preferred-mapping answers to CITY from hour H
  cache-evict@H:F     shrink warm-cache presence to fraction F at hour H

Global flags (any subcommand):
  --telemetry PATH    write structured events as JSON lines to PATH
  --metrics-out PATH  write the final metrics snapshot as JSON to PATH
  (either flag also prints a metrics table on stderr at exit)

Datasets: US-Campus, EU1-Campus, EU1-ADSL, EU1-FTTH, EU2.
Defaults: --scale 0.02, --seed 42, --landmarks 50,
          --shards = available CPUs (sharding is deterministic: any K
          produces byte-identical output; --shards 1 runs sequentially).";

/// Global observability options, orthogonal to the subcommand.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryOpts {
    /// Write structured JSONL events here (`--telemetry`).
    pub events: Option<PathBuf>,
    /// Write the final metrics snapshot (JSON) here (`--metrics-out`).
    pub metrics: Option<PathBuf>,
}

impl TelemetryOpts {
    /// Whether either flag was given.
    pub fn enabled(&self) -> bool {
        self.events.is_some() || self.metrics.is_some()
    }
}

/// A fully parsed command line: the subcommand plus global options.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand.
    pub command: Command,
    /// Global telemetry options.
    pub telemetry: TelemetryOpts,
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate one or all datasets as JSON-lines or Tstat text logs.
    Generate {
        /// One dataset, or `None` for all five.
        dataset: Option<DatasetName>,
        /// Workload scale.
        scale: f64,
        /// Scenario seed.
        seed: u64,
        /// Output file (single dataset or `.ytc`) or directory (all).
        out: PathBuf,
        /// Output format (`--format`, or implied by a `.ytc` extension).
        format: TraceFormat,
        /// Worker threads per dataset (`None` = available CPUs).
        shards: Option<usize>,
        /// Scheduled mutation specs (`kind@hour:arg`), applied in order.
        mutate: Vec<String>,
    },
    /// Analyze a trace file.
    Analyze {
        /// The JSON-lines trace.
        trace: PathBuf,
        /// Scale the analysis world was built at.
        scale: f64,
        /// Seed the analysis world was built at.
        seed: u64,
    },
    /// Geolocate a dataset's servers with CBG.
    Geolocate {
        /// The dataset to simulate and geolocate.
        dataset: DatasetName,
        /// Workload scale.
        scale: f64,
        /// Seed.
        seed: u64,
        /// Number of CBG landmarks.
        landmarks: usize,
        /// Worker threads for the simulation (`None` = available CPUs).
        shards: Option<usize>,
        /// Worker threads for CBG localization (`None` = available CPUs);
        /// per-/24 noise streams make any value byte-identical.
        jobs: Option<usize>,
    },
    /// Evaluate a counterfactual.
    WhatIf {
        /// Scenario name.
        scenario: String,
        /// Workload scale.
        scale: f64,
        /// Seed.
        seed: u64,
    },
    /// Simulate one dataset (optionally mutated) and detect CDN changes.
    Watch {
        /// The dataset to simulate and watch.
        dataset: DatasetName,
        /// Workload scale.
        scale: f64,
        /// Scenario seed.
        seed: u64,
        /// Worker threads for the simulation (`None` = available CPUs).
        shards: Option<usize>,
        /// Scheduled mutation specs (`kind@hour:arg`), applied in order.
        mutate: Vec<String>,
        /// Detection window width, hours.
        window: u64,
        /// Change-point threshold on the constellation distance.
        threshold: f64,
        /// Windows with fewer analysis flows are treated as idle.
        min_flows: u64,
        /// Load the dataset from this `.ytc` file instead of simulating
        /// (the file's recorded scale/seed/mutations win).
        from: Option<PathBuf>,
    },
    /// Workload characterization of a trace file.
    Characterize {
        /// The trace (JSONL or Tstat text).
        trace: PathBuf,
    },
    /// Describe the simulated world from each vantage point.
    World {
        /// Workload scale (affects DNS capacities).
        scale: f64,
        /// Seed.
        seed: u64,
    },
    /// Anonymize a trace's client addresses (prefix-preserving).
    Anonymize {
        /// Input trace.
        trace: PathBuf,
        /// Output path.
        out: PathBuf,
        /// Anonymization key.
        seed: u64,
    },
}

/// Trace serialization format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// JSON lines (`.jsonl`), the structured interchange form.
    #[default]
    Jsonl,
    /// Tstat-style whitespace columns (`.log`).
    Text,
    /// Compact columnar binary (`.ytc`) — one checksummed file carrying
    /// every generated dataset plus its scale/seed/mutation provenance.
    Ytc,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help` was requested.
    Help,
    /// No subcommand given.
    MissingSubcommand,
    /// Unknown subcommand.
    UnknownSubcommand(String),
    /// A flag is missing its value or a required flag is absent.
    Missing(&'static str),
    /// A value failed to parse.
    Invalid(&'static str, String),
    /// Unknown flag for this subcommand.
    UnknownFlag(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Help => f.write_str("help requested"),
            ParseError::MissingSubcommand => f.write_str("missing subcommand"),
            ParseError::UnknownSubcommand(s) => write!(f, "unknown subcommand {s:?}"),
            ParseError::Missing(what) => write!(f, "missing {what}"),
            ParseError::Invalid(what, got) => write!(f, "invalid {what}: {got:?}"),
            ParseError::UnknownFlag(s) => write!(f, "unknown flag {s:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Flags {
    dataset: Option<DatasetName>,
    scale: f64,
    seed: u64,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    landmarks: usize,
    scenario: Option<String>,
    format: Option<TraceFormat>,
    shards: Option<usize>,
    jobs: Option<usize>,
    mutate: Vec<String>,
    window: u64,
    threshold: f64,
    min_flows: u64,
    from: Option<PathBuf>,
    telemetry: TelemetryOpts,
}

fn parse_flags(args: &[String]) -> Result<Flags, ParseError> {
    let mut flags = Flags {
        dataset: None,
        scale: 0.02,
        seed: 42,
        out: None,
        trace: None,
        landmarks: 50,
        scenario: None,
        format: None,
        shards: None,
        jobs: None,
        mutate: Vec::new(),
        window: ytcdn_core::constellation::DEFAULT_WINDOW_HOURS,
        threshold: ytcdn_core::constellation::DEFAULT_THRESHOLD,
        min_flows: ytcdn_core::constellation::WatchConfig::default().min_flows,
        from: None,
        telemetry: TelemetryOpts::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what| it.next().ok_or(ParseError::Missing(what));
        match a.as_str() {
            "--help" | "-h" => return Err(ParseError::Help),
            "--dataset" => {
                let v = value("--dataset value")?;
                flags.dataset = Some(
                    v.parse()
                        .map_err(|_| ParseError::Invalid("dataset", v.clone()))?,
                );
            }
            "--scale" => {
                let v = value("--scale value")?;
                let s: f64 = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("scale", v.clone()))?;
                if !(s > 0.0 && s <= 1.0) {
                    return Err(ParseError::Invalid("scale", v.clone()));
                }
                flags.scale = s;
            }
            "--seed" => {
                let v = value("--seed value")?;
                flags.seed = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("seed", v.clone()))?;
            }
            "--out" => flags.out = Some(PathBuf::from(value("--out value")?)),
            "--trace" => flags.trace = Some(PathBuf::from(value("--trace value")?)),
            "--landmarks" => {
                let v = value("--landmarks value")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("landmarks", v.clone()))?;
                if k < 3 {
                    return Err(ParseError::Invalid("landmarks", v.clone()));
                }
                flags.landmarks = k;
            }
            "--scenario" => flags.scenario = Some(value("--scenario value")?.clone()),
            "--shards" => {
                let v = value("--shards value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("shards", v.clone()))?;
                if n == 0 {
                    return Err(ParseError::Invalid("shards", v.clone()));
                }
                flags.shards = Some(n);
            }
            "--jobs" => {
                let v = value("--jobs value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("jobs", v.clone()))?;
                if n == 0 {
                    return Err(ParseError::Invalid("jobs", v.clone()));
                }
                flags.jobs = Some(n);
            }
            "--mutate" => flags.mutate.push(value("--mutate value")?.clone()),
            "--window" => {
                let v = value("--window value")?;
                let h: u64 = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("window", v.clone()))?;
                if h == 0 {
                    return Err(ParseError::Invalid("window", v.clone()));
                }
                flags.window = h;
            }
            "--threshold" => {
                let v = value("--threshold value")?;
                let d: f64 = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("threshold", v.clone()))?;
                if !(d > 0.0 && d <= 1.0) {
                    return Err(ParseError::Invalid("threshold", v.clone()));
                }
                flags.threshold = d;
            }
            "--min-flows" => {
                let v = value("--min-flows value")?;
                flags.min_flows = v
                    .parse()
                    .map_err(|_| ParseError::Invalid("min-flows", v.clone()))?;
            }
            "--telemetry" => {
                flags.telemetry.events = Some(PathBuf::from(value("--telemetry value")?));
            }
            "--metrics-out" => {
                flags.telemetry.metrics = Some(PathBuf::from(value("--metrics-out value")?));
            }
            "--format" => {
                let v = value("--format value")?;
                flags.format = Some(match v.as_str() {
                    "jsonl" => TraceFormat::Jsonl,
                    "text" => TraceFormat::Text,
                    "ytc" => TraceFormat::Ytc,
                    _ => return Err(ParseError::Invalid("format", v.clone())),
                });
            }
            "--from" => flags.from = Some(PathBuf::from(value("--from value")?)),
            other => return Err(ParseError::UnknownFlag(other.to_owned())),
        }
    }
    Ok(flags)
}

/// Parses a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Invocation, ParseError> {
    let (sub, rest) = args.split_first().ok_or(ParseError::MissingSubcommand)?;
    match sub.as_str() {
        "--help" | "-h" | "help" => return Err(ParseError::Help),
        _ => {}
    }
    let flags = parse_flags(rest)?;
    let telemetry = flags.telemetry.clone();
    let command = match sub.as_str() {
        "generate" => {
            let out = flags.out.ok_or(ParseError::Missing("--out"))?;
            // An explicit --format wins; otherwise a .ytc extension selects
            // the columnar format and everything else stays JSONL.
            let format = flags.format.unwrap_or({
                if out.extension().is_some_and(|e| e == "ytc") {
                    TraceFormat::Ytc
                } else {
                    TraceFormat::Jsonl
                }
            });
            Ok(Command::Generate {
                dataset: flags.dataset,
                scale: flags.scale,
                seed: flags.seed,
                out,
                format,
                shards: flags.shards,
                mutate: flags.mutate.clone(),
            })
        }
        "analyze" => Ok(Command::Analyze {
            trace: flags.trace.ok_or(ParseError::Missing("--trace"))?,
            scale: flags.scale,
            seed: flags.seed,
        }),
        "geolocate" => Ok(Command::Geolocate {
            dataset: flags.dataset.ok_or(ParseError::Missing("--dataset"))?,
            scale: flags.scale,
            seed: flags.seed,
            landmarks: flags.landmarks,
            shards: flags.shards,
            jobs: flags.jobs,
        }),
        "whatif" => Ok(Command::WhatIf {
            scenario: flags.scenario.ok_or(ParseError::Missing("--scenario"))?,
            scale: flags.scale,
            seed: flags.seed,
        }),
        "watch" => {
            if flags.from.is_some() && !flags.mutate.is_empty() {
                // The file already records its mutations; a second set here
                // would silently disagree with the provenance header.
                return Err(ParseError::Invalid(
                    "--mutate",
                    "cannot be combined with --from (the .ytc file records its own mutations)"
                        .to_owned(),
                ));
            }
            Ok(Command::Watch {
                dataset: flags.dataset.ok_or(ParseError::Missing("--dataset"))?,
                scale: flags.scale,
                seed: flags.seed,
                shards: flags.shards,
                mutate: flags.mutate.clone(),
                window: flags.window,
                threshold: flags.threshold,
                min_flows: flags.min_flows,
                from: flags.from.clone(),
            })
        }
        "characterize" => Ok(Command::Characterize {
            trace: flags.trace.ok_or(ParseError::Missing("--trace"))?,
        }),
        "world" => Ok(Command::World {
            scale: flags.scale,
            seed: flags.seed,
        }),
        "anonymize" => Ok(Command::Anonymize {
            trace: flags.trace.ok_or(ParseError::Missing("--trace"))?,
            out: flags.out.ok_or(ParseError::Missing("--out"))?,
            seed: flags.seed,
        }),
        other => Err(ParseError::UnknownSubcommand(other.to_owned())),
    }?;
    Ok(Invocation { command, telemetry })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// Parses and discards the global options (most tests only care about
    /// the subcommand).
    fn cmd(args: &[&str]) -> Command {
        parse(&v(args)).unwrap().command
    }

    #[test]
    fn parse_generate_single() {
        let cmd = cmd(&[
            "generate",
            "--dataset",
            "EU1-ADSL",
            "--scale",
            "0.05",
            "--out",
            "trace.jsonl",
        ]);
        assert_eq!(
            cmd,
            Command::Generate {
                dataset: Some(DatasetName::Eu1Adsl),
                scale: 0.05,
                seed: 42,
                out: PathBuf::from("trace.jsonl"),
                format: TraceFormat::Jsonl,
                shards: None,
                mutate: vec![],
            }
        );
    }

    #[test]
    fn parse_watch_defaults_and_overrides() {
        let defaults = cmd(&["watch", "--dataset", "EU1-FTTH"]);
        assert_eq!(
            defaults,
            Command::Watch {
                dataset: DatasetName::Eu1Ftth,
                scale: 0.02,
                seed: 42,
                shards: None,
                mutate: vec![],
                window: ytcdn_core::constellation::DEFAULT_WINDOW_HOURS,
                threshold: ytcdn_core::constellation::DEFAULT_THRESHOLD,
                min_flows: ytcdn_core::constellation::WatchConfig::default().min_flows,
                from: None,
            }
        );
        let tuned = cmd(&[
            "watch",
            "--dataset",
            "EU2",
            "--scale",
            "0.05",
            "--seed",
            "7",
            "--shards",
            "3",
            "--mutate",
            "dc-down@72:milan",
            "--mutate",
            "cache-evict@48:0.05",
            "--window",
            "12",
            "--threshold",
            "0.3",
            "--min-flows",
            "10",
        ]);
        assert_eq!(
            tuned,
            Command::Watch {
                dataset: DatasetName::Eu2,
                scale: 0.05,
                seed: 7,
                shards: Some(3),
                mutate: vec!["dc-down@72:milan".into(), "cache-evict@48:0.05".into()],
                window: 12,
                threshold: 0.3,
                min_flows: 10,
                from: None,
            }
        );
        // The dataset is required; window and threshold are validated.
        assert_eq!(
            parse(&v(&["watch"])).unwrap_err(),
            ParseError::Missing("--dataset")
        );
        assert!(matches!(
            parse(&v(&["watch", "--dataset", "EU2", "--window", "0"])).unwrap_err(),
            ParseError::Invalid("window", _)
        ));
        assert!(matches!(
            parse(&v(&["watch", "--dataset", "EU2", "--threshold", "1.5"])).unwrap_err(),
            ParseError::Invalid("threshold", _)
        ));
        assert!(matches!(
            parse(&v(&["watch", "--dataset", "EU2", "--min-flows", "lots"])).unwrap_err(),
            ParseError::Invalid("min-flows", _)
        ));
    }

    #[test]
    fn parse_generate_mutations_ride_along() {
        let gen = cmd(&[
            "generate",
            "--out",
            "dir",
            "--mutate",
            "prefer-flip@96:frankfurt",
        ]);
        assert!(matches!(
            gen,
            Command::Generate { mutate, .. } if mutate == ["prefer-flip@96:frankfurt"]
        ));
    }

    #[test]
    fn parse_shards() {
        let gen = cmd(&["generate", "--shards", "8", "--out", "dir"]);
        assert!(matches!(
            gen,
            Command::Generate {
                shards: Some(8),
                ..
            }
        ));
        let geo = cmd(&["geolocate", "--dataset", "EU2", "--shards", "2"]);
        assert!(matches!(
            geo,
            Command::Geolocate {
                shards: Some(2),
                ..
            }
        ));
        // Zero and garbage are rejected; the value is required.
        assert!(matches!(
            parse(&v(&["generate", "--shards", "0", "--out", "d"])).unwrap_err(),
            ParseError::Invalid("shards", _)
        ));
        assert!(matches!(
            parse(&v(&["generate", "--shards", "many", "--out", "d"])).unwrap_err(),
            ParseError::Invalid("shards", _)
        ));
        assert_eq!(
            parse(&v(&["generate", "--shards"])).unwrap_err(),
            ParseError::Missing("--shards value")
        );
    }

    #[test]
    fn parse_generate_text_format() {
        let cmd = cmd(&["generate", "--format", "text", "--out", "dir"]);
        assert!(matches!(
            cmd,
            Command::Generate {
                format: TraceFormat::Text,
                ..
            }
        ));
        assert!(matches!(
            parse(&v(&["generate", "--format", "xml", "--out", "d"])).unwrap_err(),
            ParseError::Invalid("format", _)
        ));
    }

    #[test]
    fn parse_generate_ytc_format() {
        // Explicit flag.
        let explicit = cmd(&["generate", "--format", "ytc", "--out", "data.bin"]);
        assert!(matches!(
            explicit,
            Command::Generate {
                format: TraceFormat::Ytc,
                ..
            }
        ));
        // Implied by the extension.
        let implied = cmd(&["generate", "--out", "dataset.ytc"]);
        assert!(matches!(
            implied,
            Command::Generate {
                format: TraceFormat::Ytc,
                ..
            }
        ));
        // An explicit flag wins over the extension.
        let overridden = cmd(&["generate", "--format", "jsonl", "--out", "dataset.ytc"]);
        assert!(matches!(
            overridden,
            Command::Generate {
                format: TraceFormat::Jsonl,
                ..
            }
        ));
        // Other extensions keep the JSONL default.
        let default = cmd(&["generate", "--out", "trace.jsonl"]);
        assert!(matches!(
            default,
            Command::Generate {
                format: TraceFormat::Jsonl,
                ..
            }
        ));
    }

    #[test]
    fn parse_watch_from_ytc() {
        let loaded = cmd(&["watch", "--dataset", "EU2", "--from", "dataset.ytc"]);
        assert!(matches!(
            loaded,
            Command::Watch { from: Some(ref p), .. } if p == &PathBuf::from("dataset.ytc")
        ));
        // --from records its own mutations; combining is rejected.
        assert!(matches!(
            parse(&v(&[
                "watch",
                "--dataset",
                "EU2",
                "--from",
                "dataset.ytc",
                "--mutate",
                "dc-down@72:milan",
            ]))
            .unwrap_err(),
            ParseError::Invalid("--mutate", _)
        ));
        assert_eq!(
            parse(&v(&["watch", "--dataset", "EU2", "--from"])).unwrap_err(),
            ParseError::Missing("--from value")
        );
    }

    #[test]
    fn parse_generate_all_requires_out() {
        let err = parse(&v(&["generate"])).unwrap_err();
        assert_eq!(err, ParseError::Missing("--out"));
    }

    #[test]
    fn parse_analyze() {
        let cmd = cmd(&["analyze", "--trace", "x.jsonl", "--seed", "7"]);
        assert_eq!(
            cmd,
            Command::Analyze {
                trace: PathBuf::from("x.jsonl"),
                scale: 0.02,
                seed: 7,
            }
        );
    }

    #[test]
    fn parse_jobs() {
        let geo = cmd(&["geolocate", "--dataset", "EU2", "--jobs", "4"]);
        assert!(matches!(geo, Command::Geolocate { jobs: Some(4), .. }));
        assert!(matches!(
            parse(&v(&["geolocate", "--dataset", "EU2", "--jobs", "0"])).unwrap_err(),
            ParseError::Invalid("jobs", _)
        ));
        assert!(matches!(
            parse(&v(&["geolocate", "--dataset", "EU2", "--jobs", "many"])).unwrap_err(),
            ParseError::Invalid("jobs", _)
        ));
        assert_eq!(
            parse(&v(&["geolocate", "--dataset", "EU2", "--jobs"])).unwrap_err(),
            ParseError::Missing("--jobs value")
        );
    }

    #[test]
    fn parse_geolocate_defaults() {
        let cmd = cmd(&["geolocate", "--dataset", "EU2"]);
        assert_eq!(
            cmd,
            Command::Geolocate {
                dataset: DatasetName::Eu2,
                scale: 0.02,
                seed: 42,
                landmarks: 50,
                shards: None,
                jobs: None,
            }
        );
    }

    #[test]
    fn parse_whatif() {
        let cmd = cmd(&["whatif", "--scenario", "feb2011"]);
        assert!(matches!(cmd, Command::WhatIf { scenario, .. } if scenario == "feb2011"));
    }

    #[test]
    fn parse_telemetry_flags() {
        let inv = parse(&v(&[
            "world",
            "--telemetry",
            "events.jsonl",
            "--metrics-out",
            "metrics.json",
        ]))
        .unwrap();
        assert_eq!(
            inv.telemetry,
            TelemetryOpts {
                events: Some(PathBuf::from("events.jsonl")),
                metrics: Some(PathBuf::from("metrics.json")),
            }
        );
        assert!(inv.telemetry.enabled());
        // Off by default, and each flag requires a value.
        assert!(!parse(&v(&["world"])).unwrap().telemetry.enabled());
        assert_eq!(
            parse(&v(&["world", "--telemetry"])).unwrap_err(),
            ParseError::Missing("--telemetry value")
        );
        assert_eq!(
            parse(&v(&["world", "--metrics-out"])).unwrap_err(),
            ParseError::Missing("--metrics-out value")
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(parse(&[]).unwrap_err(), ParseError::MissingSubcommand);
        assert!(matches!(
            parse(&v(&["fly"])).unwrap_err(),
            ParseError::UnknownSubcommand(_)
        ));
        assert!(matches!(
            parse(&v(&["analyze", "--trace", "x", "--bogus"])).unwrap_err(),
            ParseError::UnknownFlag(_)
        ));
        assert!(matches!(
            parse(&v(&["generate", "--dataset", "EU9", "--out", "x"])).unwrap_err(),
            ParseError::Invalid("dataset", _)
        ));
        assert!(matches!(
            parse(&v(&["generate", "--scale", "0", "--out", "x"])).unwrap_err(),
            ParseError::Invalid("scale", _)
        ));
        assert!(matches!(
            parse(&v(&["geolocate", "--dataset", "EU2", "--landmarks", "2"])).unwrap_err(),
            ParseError::Invalid("landmarks", _)
        ));
        assert_eq!(parse(&v(&["--help"])).unwrap_err(), ParseError::Help);
        assert_eq!(
            parse(&v(&["analyze", "--help"])).unwrap_err(),
            ParseError::Help
        );
    }

    #[test]
    fn parse_characterize() {
        let cmd = cmd(&["characterize", "--trace", "x.log"]);
        assert_eq!(
            cmd,
            Command::Characterize {
                trace: PathBuf::from("x.log")
            }
        );
        assert_eq!(
            parse(&v(&["characterize"])).unwrap_err(),
            ParseError::Missing("--trace")
        );
    }

    #[test]
    fn parse_world_and_anonymize() {
        assert_eq!(
            cmd(&["world", "--scale", "0.1"]),
            Command::World {
                scale: 0.1,
                seed: 42
            }
        );
        assert_eq!(
            cmd(&[
                "anonymize",
                "--trace",
                "in.jsonl",
                "--out",
                "out.jsonl",
                "--seed",
                "9"
            ]),
            Command::Anonymize {
                trace: PathBuf::from("in.jsonl"),
                out: PathBuf::from("out.jsonl"),
                seed: 9,
            }
        );
        assert_eq!(
            parse(&v(&["anonymize", "--trace", "in.jsonl"])).unwrap_err(),
            ParseError::Missing("--out")
        );
    }

    #[test]
    fn missing_flag_values_detected() {
        assert_eq!(
            parse(&v(&["analyze", "--trace"])).unwrap_err(),
            ParseError::Missing("--trace value")
        );
    }
}
