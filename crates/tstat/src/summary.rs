//! Table I traffic summaries.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, DatasetName};

/// One row of the paper's Table I: flows, volume, distinct servers and
/// clients for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSummary {
    /// Which dataset this summarizes.
    pub dataset: DatasetName,
    /// Total number of YouTube flows.
    pub flows: usize,
    /// Total volume in bytes.
    pub bytes: u64,
    /// Distinct content-server IPs.
    pub servers: usize,
    /// Distinct client IPs in the PoP.
    pub clients: usize,
}

impl TrafficSummary {
    /// Computes the summary of a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        Self {
            dataset: dataset.name(),
            flows: dataset.len(),
            bytes: dataset.total_bytes(),
            servers: dataset.server_ips().len(),
            clients: dataset.client_ips().len(),
        }
    }

    /// Volume in gigabytes (decimal GB, as the paper reports).
    pub fn volume_gb(&self) -> f64 {
        self.bytes as f64 / 1e9
    }
}

impl fmt::Display for TrafficSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<11} flows={:<8} volume={:.2}GB servers={} clients={}",
            self.dataset.to_string(),
            self.flows,
            self.volume_gb(),
            self.servers,
            self.clients
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowRecord, Resolution, VideoId};

    #[test]
    fn summary_counts() {
        let mk = |c: &str, s: &str, bytes: u64| FlowRecord {
            client_ip: c.parse().unwrap(),
            server_ip: s.parse().unwrap(),
            start_ms: 0,
            end_ms: 1,
            bytes,
            video_id: VideoId::from_index(0),
            resolution: Resolution::R360,
        };
        let ds = Dataset::from_records(
            DatasetName::UsCampus,
            vec![
                mk("10.0.0.1", "74.125.0.1", 1_000_000_000),
                mk("10.0.0.1", "74.125.0.2", 500),
                mk("10.0.0.2", "74.125.0.1", 2_000_000_000),
            ],
        );
        let s = ds.summary();
        assert_eq!(s.flows, 3);
        assert_eq!(s.servers, 2);
        assert_eq!(s.clients, 2);
        assert_eq!(s.bytes, 3_000_000_500);
        assert!((s.volume_gb() - 3.0).abs() < 0.01);
    }

    #[test]
    fn summary_of_empty() {
        let s = Dataset::new(DatasetName::Eu2).summary();
        assert_eq!(s.flows, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.volume_gb(), 0.0);
    }

    #[test]
    fn display_contains_name() {
        let s = Dataset::new(DatasetName::Eu1Adsl).summary();
        assert!(s.to_string().contains("EU1-ADSL"));
    }
}
