//! Video vs control flow classification.
//!
//! Tstat's DPI tags every flow that talks to a YouTube content server, but
//! "it is not able to distinguish between successful video flows and control
//! messages". The paper separates them by size: the flow-size CDF (Figure 4)
//! has a sharp kink, and flows below 1000 bytes are signalling exchanges
//! (HTTP redirects, resolution-change responses) while larger flows carry
//! video payload. Manual experiments confirmed the threshold.

use serde::{Deserialize, Serialize};

use crate::flow::FlowRecord;

/// The two flow populations of the paper's Section VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FlowClass {
    /// Short signalling exchange: redirect, format renegotiation, error.
    Control,
    /// A connection that actually delivered video payload.
    Video,
}

impl std::fmt::Display for FlowClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FlowClass::Control => "control",
            FlowClass::Video => "video",
        })
    }
}

/// Size-threshold flow classifier.
///
/// # Examples
///
/// ```
/// use ytcdn_tstat::{FlowClass, FlowClassifier};
///
/// let c = FlowClassifier::default();
/// assert_eq!(c.threshold_bytes(), 1000);
/// assert_eq!(c.classify_bytes(999), FlowClass::Control);
/// assert_eq!(c.classify_bytes(1000), FlowClass::Video);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowClassifier {
    threshold_bytes: u64,
}

impl Default for FlowClassifier {
    /// The paper's threshold: "flows smaller than 1000 bytes ... correspond
    /// to control flows".
    fn default() -> Self {
        Self {
            threshold_bytes: 1000,
        }
    }
}

impl FlowClassifier {
    /// Creates a classifier with a custom threshold (for sensitivity
    /// analysis).
    pub fn with_threshold(threshold_bytes: u64) -> Self {
        Self { threshold_bytes }
    }

    /// The size threshold in bytes.
    pub fn threshold_bytes(&self) -> u64 {
        self.threshold_bytes
    }

    /// Classifies a raw byte count.
    pub fn classify_bytes(&self, bytes: u64) -> FlowClass {
        if bytes < self.threshold_bytes {
            FlowClass::Control
        } else {
            FlowClass::Video
        }
    }

    /// Classifies a flow record.
    pub fn classify(&self, flow: &FlowRecord) -> FlowClass {
        self.classify_bytes(flow.bytes)
    }

    /// Splits an iterator of flows into `(video, control)` populations.
    pub fn partition<'a, I>(&self, flows: I) -> (Vec<&'a FlowRecord>, Vec<&'a FlowRecord>)
    where
        I: IntoIterator<Item = &'a FlowRecord>,
    {
        flows
            .into_iter()
            .partition(|f| self.classify(f) == FlowClass::Video)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Resolution, VideoId};
    use proptest::prelude::*;

    fn flow(bytes: u64) -> FlowRecord {
        FlowRecord {
            client_ip: "10.0.0.1".parse().unwrap(),
            server_ip: "74.125.0.1".parse().unwrap(),
            start_ms: 0,
            end_ms: 1,
            bytes,
            video_id: VideoId::from_index(0),
            resolution: Resolution::R360,
        }
    }

    #[test]
    fn default_threshold_is_papers() {
        assert_eq!(FlowClassifier::default().threshold_bytes(), 1000);
    }

    #[test]
    fn boundary_behavior() {
        let c = FlowClassifier::default();
        assert_eq!(c.classify(&flow(0)), FlowClass::Control);
        assert_eq!(c.classify(&flow(999)), FlowClass::Control);
        assert_eq!(c.classify(&flow(1000)), FlowClass::Video);
        assert_eq!(c.classify(&flow(u64::MAX)), FlowClass::Video);
    }

    #[test]
    fn custom_threshold() {
        let c = FlowClassifier::with_threshold(500);
        assert_eq!(c.classify_bytes(499), FlowClass::Control);
        assert_eq!(c.classify_bytes(500), FlowClass::Video);
    }

    #[test]
    fn partition_splits_correctly() {
        let flows = vec![flow(10), flow(5000), flow(999), flow(1000)];
        let c = FlowClassifier::default();
        let (video, control) = c.partition(&flows);
        assert_eq!(video.len(), 2);
        assert_eq!(control.len(), 2);
        assert!(video.iter().all(|f| f.bytes >= 1000));
        assert!(control.iter().all(|f| f.bytes < 1000));
    }

    proptest! {
        #[test]
        fn classify_is_threshold_indicator(bytes in any::<u64>(), thr in 1u64..10_000_000) {
            let c = FlowClassifier::with_threshold(thr);
            let want = if bytes < thr { FlowClass::Control } else { FlowClass::Video };
            prop_assert_eq!(c.classify_bytes(bytes), want);
        }
    }
}
