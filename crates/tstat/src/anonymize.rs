//! Prefix-preserving trace anonymization.
//!
//! Datasets like the paper's cannot be shared with raw client addresses.
//! The measurement community's standard is *prefix-preserving*
//! anonymization (Crypto-PAn, Xu et al. 2002): two addresses sharing a
//! k-bit prefix map to addresses sharing a k-bit prefix, so subnet-level
//! analyses (the paper's Figure 12!) still work on the anonymized trace.
//!
//! [`Anonymizer`] implements the Crypto-PAn construction with a keyed
//! pseudorandom function per prefix node: bit `i` of the output is the
//! input bit XOR a PRF of the preceding input bits. Server addresses are
//! left intact by [`Anonymizer::anonymize_dataset`] (they are public
//! infrastructure and the whole point of the study).

use std::net::Ipv4Addr;

use crate::dataset::Dataset;

/// Keyed, deterministic, prefix-preserving IPv4 anonymizer.
///
/// # Examples
///
/// ```
/// use ytcdn_tstat::Anonymizer;
///
/// let anon = Anonymizer::new(0x5EC2E7);
/// let a = anon.anonymize_ip("128.210.7.1".parse()?);
/// let b = anon.anonymize_ip("128.210.7.200".parse()?);
/// // Same /24 in, same /24 out.
/// assert_eq!(u32::from(a) >> 8, u32::from(b) >> 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Anonymizer {
    key: u64,
}

impl Anonymizer {
    /// Creates an anonymizer with a secret key. The same key always
    /// produces the same mapping (so multi-file datasets stay consistent);
    /// different keys produce unrelated mappings.
    pub fn new(key: u64) -> Self {
        Self { key }
    }

    /// Anonymizes one address, preserving prefix relationships.
    pub fn anonymize_ip(&self, addr: Ipv4Addr) -> Ipv4Addr {
        let input = u32::from(addr);
        let mut output = 0u32;
        for bit in 0..32 {
            // The PRF sees the original (plaintext) prefix above this bit —
            // the canonical Crypto-PAn construction.
            let prefix = if bit == 0 { 0 } else { input >> (32 - bit) };
            let flip = (prf(self.key, bit as u32, prefix) & 1) as u32;
            let in_bit = (input >> (31 - bit)) & 1;
            output = (output << 1) | (in_bit ^ flip);
        }
        Ipv4Addr::from(output)
    }

    /// Anonymizes every *client* address of a dataset, leaving server
    /// addresses intact.
    pub fn anonymize_dataset(&self, dataset: &Dataset) -> Dataset {
        let records = dataset
            .records()
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.client_ip = self.anonymize_ip(r.client_ip);
                r
            })
            .collect();
        Dataset::from_records(dataset.name(), records)
    }
}

/// A small keyed PRF (splitmix-style avalanche over key, position, prefix).
fn prf(key: u64, bit: u32, prefix: u32) -> u64 {
    let mut z = key ^ (u64::from(bit) << 56) ^ u64::from(prefix);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn common_prefix_len(a: Ipv4Addr, b: Ipv4Addr) -> u32 {
        (u32::from(a) ^ u32::from(b)).leading_zeros()
    }

    #[test]
    fn deterministic_and_key_dependent() {
        let ip: Ipv4Addr = "128.210.7.9".parse().unwrap();
        let a1 = Anonymizer::new(1).anonymize_ip(ip);
        let a2 = Anonymizer::new(1).anonymize_ip(ip);
        let b = Anonymizer::new(2).anonymize_ip(ip);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, ip, "identity mapping would not anonymize");
    }

    #[test]
    fn dataset_anonymization_preserves_everything_but_clients() {
        use crate::flow::{FlowRecord, Resolution, VideoId};
        let ds = Dataset::from_records(
            crate::dataset::DatasetName::UsCampus,
            vec![FlowRecord {
                client_ip: "128.210.7.9".parse().unwrap(),
                server_ip: "74.125.1.2".parse().unwrap(),
                start_ms: 5,
                end_ms: 10,
                bytes: 12345,
                video_id: VideoId::from_index(7),
                resolution: Resolution::R360,
            }],
        );
        let anon = Anonymizer::new(99).anonymize_dataset(&ds);
        let (orig, new) = (&ds.records()[0], &anon.records()[0]);
        assert_ne!(new.client_ip, orig.client_ip);
        assert_eq!(new.server_ip, orig.server_ip);
        assert_eq!(new.bytes, orig.bytes);
        assert_eq!(new.video_id, orig.video_id);
        assert_eq!(anon.summary().clients, ds.summary().clients);
    }

    proptest! {
        /// The defining property: anonymization preserves the length of the
        /// longest common prefix between any two addresses.
        #[test]
        fn prefix_preservation(a in any::<u32>(), b in any::<u32>(), key in any::<u64>()) {
            let anon = Anonymizer::new(key);
            let (ia, ib) = (Ipv4Addr::from(a), Ipv4Addr::from(b));
            let (oa, ob) = (anon.anonymize_ip(ia), anon.anonymize_ip(ib));
            prop_assert_eq!(common_prefix_len(ia, ib), common_prefix_len(oa, ob));
        }

        /// Injective: distinct inputs stay distinct (follows from prefix
        /// preservation, asserted directly for clarity).
        #[test]
        fn injective(a in any::<u32>(), b in any::<u32>(), key in any::<u64>()) {
            prop_assume!(a != b);
            let anon = Anonymizer::new(key);
            prop_assert_ne!(
                anon.anonymize_ip(Ipv4Addr::from(a)),
                anon.anonymize_ip(Ipv4Addr::from(b))
            );
        }
    }
}
