//! Flow records, video identifiers, and resolutions.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// YouTube's base64-style VideoID alphabet (RFC 4648 URL-safe).
const VIDEO_ID_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// An 11-character YouTube video identifier.
///
/// The paper: "Tstat records the video identifier (VideoID), which is a
/// unique 11 characters long string assigned by YouTube to the video". We
/// derive the string deterministically from a numeric catalog index so
/// generated traces stay compact and reproducible.
///
/// # Examples
///
/// ```
/// use ytcdn_tstat::VideoId;
///
/// let id = VideoId::from_index(42);
/// assert_eq!(id.as_str().len(), 11);
/// assert_eq!(id.index(), 42);
/// assert_eq!(id.as_str().parse::<VideoId>()?, id);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(into = "String", try_from = "String")]
pub struct VideoId(u64);

impl VideoId {
    /// Creates the VideoID for catalog index `index`.
    pub fn from_index(index: u64) -> Self {
        VideoId(index)
    }

    /// The numeric catalog index this ID encodes.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The canonical 11-character string form, as an inline (stack) buffer.
    pub fn as_str(self) -> VideoIdStr {
        // 11 base64 digits encode 66 bits; a u64 always fits. A light
        // bit-mixing pass makes consecutive indices visually unrelated,
        // like real VideoIDs, while remaining invertible.
        let mixed = mix(self.0);
        let mut chars = [0u8; 11];
        let mut v = mixed as u128;
        for slot in chars.iter_mut().rev() {
            *slot = VIDEO_ID_ALPHABET[(v & 0x3f) as usize];
            v >>= 6;
        }
        VideoIdStr(chars)
    }
}

/// The 11-character string form of a [`VideoId`], held inline — rendering
/// an ID costs no heap allocation. Derefs to `str`, so it drops in
/// wherever a string slice is expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VideoIdStr([u8; 11]);

impl VideoIdStr {
    /// The string view of the buffer.
    pub fn as_str(&self) -> &str {
        // ytcdn-lint: allow(PAN001) — the buffer is filled from the base-64 video-id alphabet, which is ASCII
        std::str::from_utf8(&self.0).expect("alphabet is ASCII")
    }
}

impl std::ops::Deref for VideoIdStr {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for VideoIdStr {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for VideoIdStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PartialEq<str> for VideoIdStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for VideoIdStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// Invertible 64-bit mix (splitmix64 finalizer).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Inverse of [`mix`].
fn unmix(z: u64) -> u64 {
    // Inverse of each step of splitmix64's finalizer.
    fn unxorshift(mut v: u64, shift: u32) -> u64 {
        let mut res = v;
        while v != 0 {
            v >>= shift;
            res ^= v;
        }
        res
    }
    let mut x = unxorshift(z, 31);
    x = x.wrapping_mul(0x3196_42b2_d24d_8ec3); // modular inverse of 0x94d049bb133111eb
    x = unxorshift(x, 27);
    x = x.wrapping_mul(0x96de_1b17_3f11_9089); // modular inverse of 0xbf58476d1ce4e5b9
    x = unxorshift(x, 30);
    x.wrapping_sub(0x9e37_79b9_7f4a_7c15)
}

impl fmt::Display for VideoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str().as_str())
    }
}

impl FromStr for VideoId {
    type Err = ParseVideoIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bytes = s.as_bytes();
        if bytes.len() != 11 {
            return Err(ParseVideoIdError(s.to_owned()));
        }
        let mut v: u128 = 0;
        for &b in bytes {
            let digit = VIDEO_ID_ALPHABET
                .iter()
                .position(|&a| a == b)
                .ok_or_else(|| ParseVideoIdError(s.to_owned()))? as u128;
            // 11 digits × 6 bits = 66 bits, well inside the u128
            // accumulator; checked_shl makes that headroom explicit.
            v = v
                .checked_shl(6)
                .ok_or_else(|| ParseVideoIdError(s.to_owned()))?
                | digit;
        }
        // The top two of the 66 encoded bits must be zero for a u64 index.
        if v >> 64 != 0 {
            return Err(ParseVideoIdError(s.to_owned()));
        }
        Ok(VideoId(unmix(v as u64)))
    }
}

impl From<VideoId> for String {
    fn from(id: VideoId) -> String {
        id.as_str().as_str().to_owned()
    }
}

impl TryFrom<String> for VideoId {
    type Error = ParseVideoIdError;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

/// Error returned when parsing a malformed VideoID string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVideoIdError(String);

impl fmt::Display for ParseVideoIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid VideoID: {:?} (want 11 base64url chars)", self.0)
    }
}

impl std::error::Error for ParseVideoIdError {}

/// Video resolution of a request, as recorded by Tstat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Resolution {
    /// 240p Flash-era default.
    R240,
    /// 360p.
    R360,
    /// 480p.
    R480,
    /// 720p HD.
    R720,
    /// 1080p HD.
    R1080,
}

impl Resolution {
    /// All resolutions, ascending.
    pub const ALL: [Resolution; 5] = [
        Resolution::R240,
        Resolution::R360,
        Resolution::R480,
        Resolution::R720,
        Resolution::R1080,
    ];

    /// Approximate video bitrate for this resolution, bytes per second.
    /// (2010-era H.264/FLV encodes.)
    pub fn bytes_per_sec(self) -> u64 {
        match self {
            Resolution::R240 => 40_000,
            Resolution::R360 => 70_000,
            Resolution::R480 => 120_000,
            Resolution::R720 => 260_000,
            Resolution::R1080 => 480_000,
        }
    }
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resolution::R240 => "240p",
            Resolution::R360 => "360p",
            Resolution::R480 => "480p",
            Resolution::R720 => "720p",
            Resolution::R1080 => "1080p",
        };
        f.write_str(s)
    }
}

/// One line of a Tstat flow log: a single TCP flow between a client in the
/// monitored network and a YouTube content server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Client (monitored-network) address.
    pub client_ip: Ipv4Addr,
    /// Content-server address.
    pub server_ip: Ipv4Addr,
    /// Flow start, ms since the start of the collection window.
    pub start_ms: u64,
    /// Flow end, ms since the start of the collection window.
    pub end_ms: u64,
    /// Total bytes carried server→client.
    pub bytes: u64,
    /// The requested video.
    pub video_id: VideoId,
    /// The requested resolution.
    pub resolution: Resolution,
}

impl FlowRecord {
    /// Flow duration in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end_ms < start_ms`; such a record is
    /// malformed.
    pub fn duration_ms(&self) -> u64 {
        debug_assert!(self.end_ms >= self.start_ms);
        self.end_ms.saturating_sub(self.start_ms)
    }

    /// Validates internal consistency (times ordered).
    pub fn is_well_formed(&self) -> bool {
        self.end_ms >= self.start_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn video_id_roundtrip_small() {
        for i in 0..1000u64 {
            let id = VideoId::from_index(i);
            let s = id.as_str();
            assert_eq!(s.len(), 11);
            assert_eq!(s.parse::<VideoId>().unwrap(), id, "index {i} str {s}");
        }
    }

    #[test]
    fn video_id_distinct_strings() {
        let a = VideoId::from_index(1).as_str();
        let b = VideoId::from_index(2).as_str();
        assert_ne!(a, b);
        // Consecutive indices should not produce visually consecutive IDs.
        let differing = a.bytes().zip(b.bytes()).filter(|(x, y)| x != y).count();
        assert!(differing > 3, "{a} vs {b}");
    }

    #[test]
    fn video_id_str_is_inline_and_consistent() {
        let id = VideoId::from_index(123_456);
        let s = id.as_str();
        // The buffer type derefs to the same string Display renders.
        assert_eq!(&*s, format!("{id}"));
        assert_eq!(s.as_str(), s.as_ref() as &str);
        assert_eq!(s, *s.as_str());
        assert_eq!(format!("{s}"), format!("{id}"));
        // Copy semantics: no clone needed, both copies agree.
        let t = s;
        assert_eq!(s, t);
    }

    #[test]
    fn video_id_parse_rejects_bad() {
        assert!("short".parse::<VideoId>().is_err());
        assert!("waytoolongvideoid".parse::<VideoId>().is_err());
        assert!("abc!efghijk".parse::<VideoId>().is_err());
        // 11 chars but encodes > u64::MAX (top bits set).
        assert!("__________Z".parse::<VideoId>().is_err());
    }

    #[test]
    fn video_id_serde_as_string() {
        let id = VideoId::from_index(7);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, format!("\"{}\"", id.as_str()));
        let back: VideoId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn resolution_bitrates_monotone() {
        let rates: Vec<_> = Resolution::ALL.iter().map(|r| r.bytes_per_sec()).collect();
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn flow_duration() {
        let f = FlowRecord {
            client_ip: "10.0.0.1".parse().unwrap(),
            server_ip: "74.125.0.1".parse().unwrap(),
            start_ms: 1000,
            end_ms: 61_000,
            bytes: 5_000_000,
            video_id: VideoId::from_index(0),
            resolution: Resolution::R360,
        };
        assert_eq!(f.duration_ms(), 60_000);
        assert!(f.is_well_formed());
    }

    #[test]
    fn flow_record_json_roundtrip() {
        let f = FlowRecord {
            client_ip: "10.0.0.1".parse().unwrap(),
            server_ip: "74.125.0.1".parse().unwrap(),
            start_ms: 0,
            end_ms: 10,
            bytes: 700,
            video_id: VideoId::from_index(99),
            resolution: Resolution::R480,
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: FlowRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    proptest! {
        #[test]
        fn video_id_roundtrip_any(index in any::<u64>()) {
            let id = VideoId::from_index(index);
            prop_assert_eq!(id.as_str().parse::<VideoId>().unwrap(), id);
        }

        #[test]
        fn video_id_injective(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(VideoId::from_index(a).as_str(), VideoId::from_index(b).as_str());
        }
    }
}
