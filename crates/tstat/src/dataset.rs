//! Named per-vantage-point flow datasets.

use std::collections::BTreeSet;
use std::fmt;
use std::io::{BufRead, Write};
use std::net::Ipv4Addr;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::flow::FlowRecord;
use crate::summary::TrafficSummary;

/// The five vantage points of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DatasetName {
    /// US university campus (Purdue).
    UsCampus,
    /// European university campus (Politecnico di Torino).
    Eu1Campus,
    /// ADSL PoP of the EU1 nation-wide ISP.
    Eu1Adsl,
    /// FTTH PoP of the same EU1 ISP.
    Eu1Ftth,
    /// PoP of the largest ISP in a second European country — the one with a
    /// YouTube data center *inside* the ISP.
    Eu2,
}

impl DatasetName {
    /// All five datasets, in the paper's table order.
    pub const ALL: [DatasetName; 5] = [
        DatasetName::UsCampus,
        DatasetName::Eu1Campus,
        DatasetName::Eu1Adsl,
        DatasetName::Eu1Ftth,
        DatasetName::Eu2,
    ];

    /// The paper's name for the dataset, as a static string (the form used
    /// by [`fmt::Display`], CLI flags, and telemetry scopes).
    pub fn as_str(self) -> &'static str {
        match self {
            DatasetName::UsCampus => "US-Campus",
            DatasetName::Eu1Campus => "EU1-Campus",
            DatasetName::Eu1Adsl => "EU1-ADSL",
            DatasetName::Eu1Ftth => "EU1-FTTH",
            DatasetName::Eu2 => "EU2",
        }
    }
}

impl fmt::Display for DatasetName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for DatasetName {
    type Err = DatasetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "US-Campus" => Ok(DatasetName::UsCampus),
            "EU1-Campus" => Ok(DatasetName::Eu1Campus),
            "EU1-ADSL" => Ok(DatasetName::Eu1Adsl),
            "EU1-FTTH" => Ok(DatasetName::Eu1Ftth),
            "EU2" => Ok(DatasetName::Eu2),
            _ => Err(DatasetError::UnknownName(s.to_owned())),
        }
    }
}

/// A week-long flow log collected at one vantage point.
///
/// Records are kept sorted by start time — the order a passive monitor
/// produces them — which downstream session grouping relies on.
///
/// # Examples
///
/// ```
/// use ytcdn_tstat::{Dataset, DatasetName};
///
/// let ds = Dataset::new(DatasetName::UsCampus);
/// assert_eq!(ds.len(), 0);
/// assert!(ds.is_empty());
/// assert_eq!(ds.name().to_string(), "US-Campus");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: DatasetName,
    records: Vec<FlowRecord>,
}

impl Dataset {
    /// Creates an empty dataset for `name`.
    pub fn new(name: DatasetName) -> Self {
        Self {
            name,
            records: Vec::new(),
        }
    }

    /// Builds a dataset from records, sorting them by start time.
    pub fn from_records(name: DatasetName, mut records: Vec<FlowRecord>) -> Self {
        records.sort_by_key(|r| (r.start_ms, r.end_ms));
        Self { name, records }
    }

    /// The vantage point this dataset was collected at.
    pub fn name(&self) -> DatasetName {
        self.name
    }

    /// Appends a record, keeping start-time order.
    pub fn push(&mut self, record: FlowRecord) {
        let pos = self
            .records
            .partition_point(|r| (r.start_ms, r.end_ms) <= (record.start_ms, record.end_ms));
        self.records.insert(pos, record);
    }

    /// Number of flow records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, sorted by start time.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, FlowRecord> {
        self.records.iter()
    }

    /// Distinct server IPs observed.
    pub fn server_ips(&self) -> BTreeSet<Ipv4Addr> {
        self.records.iter().map(|r| r.server_ip).collect()
    }

    /// Distinct client IPs observed.
    pub fn client_ips(&self) -> BTreeSet<Ipv4Addr> {
        self.records.iter().map(|r| r.client_ip).collect()
    }

    /// Total bytes across all flows.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Computes the Table I row for this dataset.
    pub fn summary(&self) -> TrafficSummary {
        TrafficSummary::of(self)
    }

    /// A new dataset containing only flows *starting* within
    /// `[start_ms, end_ms)` — hour- or day-slicing for time-window analyses.
    pub fn time_slice(&self, start_ms: u64, end_ms: u64) -> Dataset {
        Dataset {
            name: self.name,
            records: self
                .records
                .iter()
                .filter(|r| r.start_ms >= start_ms && r.start_ms < end_ms)
                .cloned()
                .collect(),
        }
    }

    /// A new dataset containing only flows whose client passes `keep` —
    /// e.g. one subnet's traffic.
    pub fn filter_clients(&self, mut keep: impl FnMut(Ipv4Addr) -> bool) -> Dataset {
        Dataset {
            name: self.name,
            records: self
                .records
                .iter()
                .filter(|r| keep(r.client_ip))
                .cloned()
                .collect(),
        }
    }

    /// Serializes the dataset as JSON-lines: a header line with the name,
    /// then one [`FlowRecord`] per line.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from `w`, or a serialization error.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> Result<(), DatasetError> {
        writeln!(w, "{}", serde_json::to_string(&self.name)?)?;
        for r in &self.records {
            writeln!(w, "{}", serde_json::to_string(r)?)?;
        }
        Ok(())
    }

    /// Reads a dataset back from the JSON-lines form of
    /// [`Dataset::write_jsonl`]. Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::Empty`] for input without a header, or the
    /// underlying I/O / JSON error.
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Self, DatasetError> {
        let mut lines = r.lines();
        let header = loop {
            match lines.next() {
                None => return Err(DatasetError::Empty),
                Some(line) => {
                    let line = line?;
                    if !line.trim().is_empty() {
                        break line;
                    }
                }
            }
        };
        let name: DatasetName = serde_json::from_str(&header)?;
        let mut records = Vec::new();
        for line in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            records.push(serde_json::from_str(&line)?);
        }
        Ok(Dataset::from_records(name, records))
    }
}

impl Extend<FlowRecord> for Dataset {
    fn extend<T: IntoIterator<Item = FlowRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
        self.records.sort_by_key(|r| (r.start_ms, r.end_ms));
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a FlowRecord;
    type IntoIter = std::slice::Iter<'a, FlowRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Errors from dataset parsing and serialization.
#[derive(Debug)]
pub enum DatasetError {
    /// Unrecognized dataset name string.
    UnknownName(String),
    /// Serialized input contained no header line.
    Empty,
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Underlying JSON failure.
    Json(serde_json::Error),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::UnknownName(s) => write!(f, "unknown dataset name: {s:?}"),
            DatasetError::Empty => f.write_str("serialized dataset has no header line"),
            DatasetError::Io(e) => write!(f, "dataset I/O error: {e}"),
            DatasetError::Json(e) => write!(f, "dataset JSON error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Io(e) => Some(e),
            DatasetError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<serde_json::Error> for DatasetError {
    fn from(e: serde_json::Error) -> Self {
        DatasetError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Resolution, VideoId};

    fn flow(start: u64, bytes: u64) -> FlowRecord {
        FlowRecord {
            client_ip: "10.0.0.1".parse().unwrap(),
            server_ip: "74.125.0.1".parse().unwrap(),
            start_ms: start,
            end_ms: start + 100,
            bytes,
            video_id: VideoId::from_index(start),
            resolution: Resolution::R360,
        }
    }

    #[test]
    fn names_roundtrip() {
        for n in DatasetName::ALL {
            assert_eq!(n.to_string().parse::<DatasetName>().unwrap(), n);
        }
        assert!("EU3".parse::<DatasetName>().is_err());
    }

    #[test]
    fn from_records_sorts() {
        let ds = Dataset::from_records(
            DatasetName::Eu2,
            vec![flow(50, 1), flow(10, 2), flow(30, 3)],
        );
        let starts: Vec<_> = ds.iter().map(|r| r.start_ms).collect();
        assert_eq!(starts, vec![10, 30, 50]);
    }

    #[test]
    fn push_keeps_order() {
        let mut ds = Dataset::new(DatasetName::UsCampus);
        ds.push(flow(100, 1));
        ds.push(flow(50, 1));
        ds.push(flow(75, 1));
        let starts: Vec<_> = ds.iter().map(|r| r.start_ms).collect();
        assert_eq!(starts, vec![50, 75, 100]);
    }

    #[test]
    fn extend_keeps_order() {
        let mut ds = Dataset::new(DatasetName::UsCampus);
        ds.extend([flow(100, 1), flow(10, 1)]);
        ds.extend([flow(55, 1)]);
        let starts: Vec<_> = ds.iter().map(|r| r.start_ms).collect();
        assert_eq!(starts, vec![10, 55, 100]);
    }

    #[test]
    fn distinct_ip_sets() {
        let mut ds = Dataset::new(DatasetName::Eu1Adsl);
        let mut f1 = flow(0, 10);
        f1.client_ip = "10.0.0.1".parse().unwrap();
        f1.server_ip = "74.125.0.1".parse().unwrap();
        let mut f2 = flow(1, 20);
        f2.client_ip = "10.0.0.2".parse().unwrap();
        f2.server_ip = "74.125.0.1".parse().unwrap();
        ds.extend([f1, f2]);
        assert_eq!(ds.client_ips().len(), 2);
        assert_eq!(ds.server_ips().len(), 1);
        assert_eq!(ds.total_bytes(), 30);
    }

    #[test]
    fn time_slice_selects_by_start() {
        let ds = Dataset::from_records(
            DatasetName::Eu2,
            vec![flow(0, 1), flow(100, 2), flow(200, 3), flow(300, 4)],
        );
        let slice = ds.time_slice(100, 300);
        assert_eq!(slice.len(), 2);
        assert!(slice.iter().all(|r| (100..300).contains(&r.start_ms)));
        assert_eq!(slice.name(), DatasetName::Eu2);
        // Empty window.
        assert!(ds.time_slice(500, 600).is_empty());
    }

    #[test]
    fn filter_clients_partitions() {
        let mut a = flow(0, 1);
        a.client_ip = "10.0.0.1".parse().unwrap();
        let mut b = flow(1, 2);
        b.client_ip = "10.0.0.2".parse().unwrap();
        let ds = Dataset::from_records(DatasetName::Eu2, vec![a, b]);
        let one = ds.filter_clients(|ip| ip.octets()[3] == 1);
        let two = ds.filter_clients(|ip| ip.octets()[3] == 2);
        assert_eq!(one.len() + two.len(), ds.len());
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = Dataset::from_records(
            DatasetName::Eu1Ftth,
            vec![flow(0, 500), flow(10, 5_000_000)],
        );
        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let back = Dataset::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let ds = Dataset::from_records(DatasetName::Eu2, vec![flow(0, 500)]);
        let mut buf = Vec::new();
        ds.write_jsonl(&mut buf).unwrap();
        let with_blanks = format!("\n{}\n\n", String::from_utf8(buf).unwrap());
        let back = Dataset::read_jsonl(with_blanks.as_bytes()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn read_empty_is_error() {
        let err = Dataset::read_jsonl(&b""[..]).unwrap_err();
        assert!(matches!(err, DatasetError::Empty));
    }

    #[test]
    fn read_garbage_is_error() {
        let err = Dataset::read_jsonl(&b"not json"[..]).unwrap_err();
        assert!(matches!(err, DatasetError::Json(_)));
        // Error chains expose the source.
        assert!(std::error::Error::source(&err).is_some());
    }
}
