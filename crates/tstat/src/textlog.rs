//! The Tstat-style column-oriented text log format.
//!
//! Real Tstat writes flow logs as whitespace-separated columns with a `#`
//! header line — the format the paper's week-long datasets were stored in.
//! This module reads and writes that representation:
//!
//! ```text
//! #client_ip server_ip t_start_ms t_end_ms bytes video_id resolution
//! 128.210.12.7 74.125.0.33 18744 19411 612 dQw4w9WgXcQ 360p
//! ```
//!
//! The JSON-lines format in [`crate::Dataset`] is the structured
//! interchange form; the text format exists for interoperability with
//! awk/gnuplot-style tooling and as the human-auditable representation.

use std::fmt;
use std::io::{BufRead, Write};

use crate::dataset::{Dataset, DatasetName};
use crate::flow::{FlowRecord, Resolution, VideoId};

/// The header line written before the columns.
pub const HEADER: &str = "#client_ip server_ip t_start_ms t_end_ms bytes video_id resolution";

/// Writes a dataset in Tstat text-log form.
///
/// The dataset name is recorded in a leading comment so
/// [`read_textlog`] can restore it.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_textlog<W: Write>(dataset: &Dataset, mut w: W) -> std::io::Result<()> {
    writeln!(w, "#dataset {}", dataset.name())?;
    writeln!(w, "{HEADER}")?;
    for r in dataset.records() {
        writeln!(
            w,
            "{} {} {} {} {} {} {}",
            r.client_ip, r.server_ip, r.start_ms, r.end_ms, r.bytes, r.video_id, r.resolution
        )?;
    }
    Ok(())
}

/// Parses a Tstat text log produced by [`write_textlog`].
///
/// Comment lines (starting with `#`) other than the `#dataset` header and
/// blank lines are skipped, so hand-annotated logs parse fine.
///
/// # Errors
///
/// Returns [`TextLogError`] on a missing `#dataset` header or any
/// malformed record line (with its line number).
pub fn read_textlog<R: BufRead>(r: R) -> Result<Dataset, TextLogError> {
    let mut name: Option<DatasetName> = None;
    let mut records = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(TextLogError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("#dataset") {
            let parsed = rest
                .trim()
                .parse()
                .map_err(|_| TextLogError::bad(lineno, "dataset name", rest))?;
            name = Some(parsed);
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        records.push(parse_record(lineno, trimmed)?);
    }
    let name = name.ok_or(TextLogError::MissingDatasetHeader)?;
    Ok(Dataset::from_records(name, records))
}

fn parse_record(lineno: usize, line: &str) -> Result<FlowRecord, TextLogError> {
    let mut cols = line.split_whitespace();
    let mut next = |what| {
        cols.next()
            .ok_or(TextLogError::MissingColumn { lineno, what })
    };
    let client_ip = next("client_ip")?
        .parse()
        .map_err(|_| TextLogError::bad(lineno, "client_ip", line))?;
    let server_ip = next("server_ip")?
        .parse()
        .map_err(|_| TextLogError::bad(lineno, "server_ip", line))?;
    let start_ms = next("t_start_ms")?
        .parse()
        .map_err(|_| TextLogError::bad(lineno, "t_start_ms", line))?;
    let end_ms = next("t_end_ms")?
        .parse()
        .map_err(|_| TextLogError::bad(lineno, "t_end_ms", line))?;
    let bytes = next("bytes")?
        .parse()
        .map_err(|_| TextLogError::bad(lineno, "bytes", line))?;
    let video_id: VideoId = next("video_id")?
        .parse()
        .map_err(|_| TextLogError::bad(lineno, "video_id", line))?;
    let resolution = parse_resolution(next("resolution")?)
        .ok_or_else(|| TextLogError::bad(lineno, "resolution", line))?;
    if end_ms < start_ms {
        return Err(TextLogError::bad(lineno, "time ordering", line));
    }
    Ok(FlowRecord {
        client_ip,
        server_ip,
        start_ms,
        end_ms,
        bytes,
        video_id,
        resolution,
    })
}

fn parse_resolution(s: &str) -> Option<Resolution> {
    Resolution::ALL.into_iter().find(|r| r.to_string() == s)
}

/// Errors from text-log parsing.
#[derive(Debug)]
pub enum TextLogError {
    /// The log has no `#dataset <name>` header.
    MissingDatasetHeader,
    /// A record line ended before all columns were read.
    MissingColumn {
        /// Zero-based line number.
        lineno: usize,
        /// Which column was missing.
        what: &'static str,
    },
    /// A column failed to parse.
    BadColumn {
        /// Zero-based line number.
        lineno: usize,
        /// Which column.
        what: &'static str,
        /// The offending line (truncated).
        line: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl TextLogError {
    fn bad(lineno: usize, what: &'static str, line: &str) -> Self {
        TextLogError::BadColumn {
            lineno,
            what,
            line: line.chars().take(80).collect(),
        }
    }
}

impl fmt::Display for TextLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextLogError::MissingDatasetHeader => {
                f.write_str("text log has no '#dataset <name>' header")
            }
            TextLogError::MissingColumn { lineno, what } => {
                write!(f, "line {}: missing column {what}", lineno + 1)
            }
            TextLogError::BadColumn { lineno, what, line } => {
                write!(f, "line {}: bad {what} in {line:?}", lineno + 1)
            }
            TextLogError::Io(e) => write!(f, "text log I/O error: {e}"),
        }
    }
}

impl std::error::Error for TextLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TextLogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flow(start: u64, bytes: u64) -> FlowRecord {
        FlowRecord {
            client_ip: "128.210.1.2".parse().unwrap(),
            server_ip: "74.125.3.4".parse().unwrap(),
            start_ms: start,
            end_ms: start + 500,
            bytes,
            video_id: VideoId::from_index(start * 7),
            resolution: Resolution::R480,
        }
    }

    #[test]
    fn roundtrip() {
        let ds = Dataset::from_records(
            DatasetName::Eu1Adsl,
            vec![flow(0, 600), flow(100, 9_000_000), flow(5000, 777)],
        );
        let mut buf = Vec::new();
        write_textlog(&ds, &mut buf).unwrap();
        let back = read_textlog(&buf[..]).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn header_format() {
        let ds = Dataset::from_records(DatasetName::Eu2, vec![flow(0, 1)]);
        let mut buf = Vec::new();
        write_textlog(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("#dataset EU2"));
        assert_eq!(lines.next(), Some(HEADER));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let input = "\n#dataset EU1-FTTH\n# a manual note\n\n128.210.1.2 74.125.3.4 5 10 900 AAAAAAAAAAA 240p\n";
        let ds = read_textlog(input.as_bytes()).unwrap();
        assert_eq!(ds.name(), DatasetName::Eu1Ftth);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.records()[0].bytes, 900);
    }

    #[test]
    fn missing_header_is_error() {
        let input = "128.210.1.2 74.125.3.4 5 10 900 AAAAAAAAAAA 240p\n";
        assert!(matches!(
            read_textlog(input.as_bytes()).unwrap_err(),
            TextLogError::MissingDatasetHeader
        ));
    }

    #[test]
    fn truncated_line_reports_column_and_lineno() {
        let input = "#dataset EU2\n1.2.3.4 5.6.7.8 5 10\n";
        let err = read_textlog(input.as_bytes()).unwrap_err();
        match err {
            TextLogError::MissingColumn { lineno, what } => {
                assert_eq!(lineno, 1);
                assert_eq!(what, "bytes");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_values_rejected() {
        for bad in [
            "#dataset EU2\nnot_an_ip 5.6.7.8 5 10 1 AAAAAAAAAAA 240p\n",
            "#dataset EU2\n1.2.3.4 5.6.7.8 x 10 1 AAAAAAAAAAA 240p\n",
            "#dataset EU2\n1.2.3.4 5.6.7.8 5 10 1 short 240p\n",
            "#dataset EU2\n1.2.3.4 5.6.7.8 5 10 1 AAAAAAAAAAA 999p\n",
            // end before start
            "#dataset EU2\n1.2.3.4 5.6.7.8 10 5 1 AAAAAAAAAAA 240p\n",
            "#dataset Mars\n",
        ] {
            assert!(read_textlog(bad.as_bytes()).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn error_display_is_informative() {
        let input = "#dataset EU2\n1.2.3.4 5.6.7.8 x 10 1 AAAAAAAAAAA 240p\n";
        let err = read_textlog(input.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("t_start_ms"), "{msg}");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_records(
            seeds in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000, 0u64..10_000_000_000), 0..50)
        ) {
            let records: Vec<FlowRecord> = seeds
                .iter()
                .map(|&(start, dur, bytes)| FlowRecord {
                    client_ip: std::net::Ipv4Addr::from((start as u32).wrapping_mul(2654435761)),
                    server_ip: std::net::Ipv4Addr::from((dur as u32).wrapping_mul(40503)),
                    start_ms: start,
                    end_ms: start + dur,
                    bytes,
                    video_id: VideoId::from_index(start ^ dur),
                    resolution: Resolution::ALL[(bytes % 5) as usize],
                })
                .collect();
            let ds = Dataset::from_records(DatasetName::UsCampus, records);
            let mut buf = Vec::new();
            write_textlog(&ds, &mut buf).unwrap();
            let back = read_textlog(&buf[..]).unwrap();
            prop_assert_eq!(back, ds);
        }
    }
}
