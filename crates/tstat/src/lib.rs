//! Tstat-style flow-level data model.
//!
//! The paper's datasets are "flow-level logs where each line reports a set of
//! statistics related to each YouTube video flow": source and destination IP,
//! total bytes, start and end time, the 11-character `VideoID`, and the
//! requested resolution. This crate is the synthetic Tstat: it defines those
//! records, classifies them into *video* vs *control* flows using the
//! paper's 1000-byte heuristic (the "kink" in Figure 4), and assembles them
//! into named per-vantage-point [`Dataset`]s with Table I-style summaries.
//!
//! What Tstat does with DPI on live packets — recognizing which flows carry
//! YouTube video — is already decided at generation time here, so the crate's
//! classification layer focuses on the part the paper had to solve on top of
//! Tstat: telling apart successful video transfers and short signalling
//! exchanges by size alone.
//!
//! # Examples
//!
//! ```
//! use ytcdn_tstat::{FlowClass, FlowClassifier};
//!
//! let classifier = FlowClassifier::default();
//! assert_eq!(classifier.classify_bytes(400), FlowClass::Control);
//! assert_eq!(classifier.classify_bytes(5_000_000), FlowClass::Video);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anonymize;
mod classify;
mod dataset;
mod flow;
mod summary;
pub mod textlog;

pub use anonymize::Anonymizer;
pub use classify::{FlowClass, FlowClassifier};
pub use dataset::{Dataset, DatasetError, DatasetName};
pub use flow::{FlowRecord, ParseVideoIdError, Resolution, VideoId, VideoIdStr};
pub use summary::TrafficSummary;
pub use textlog::{read_textlog, write_textlog};

/// Milliseconds in one hour.
pub const HOUR_MS: u64 = 3_600_000;

/// Milliseconds in one day.
pub const DAY_MS: u64 = 24 * HOUR_MS;

/// Milliseconds in the paper's one-week collection window.
pub const WEEK_MS: u64 = 7 * DAY_MS;
