//! Delay-based geolocation.
//!
//! Section V of the paper geolocates every YouTube server seen in the
//! traces. Database lookups fail for CDN-internal addresses (MaxMind placed
//! every YouTube server in Mountain View), and reverse DNS is disabled on
//! the new infrastructure, so the authors run **CBG** — Constraint-Based
//! Geolocation (Gueye et al., ToN 2006) — from 215 PlanetLab landmarks.
//!
//! This crate implements all three pieces:
//!
//! * [`Cbg`] — the constraint-based algorithm: per-landmark *bestline*
//!   calibration against the other landmarks, RTT-to-distance upper bounds,
//!   intersection of the resulting disks, and a centroid estimate with a
//!   confidence-region radius (the quantity of the paper's Figure 3);
//! * [`MaxmindLike`] — the failing baseline: a prefix-keyed database that
//!   sends every unknown corporate address to one headquarters location;
//! * [`cluster_by_city`] — the paper's aggregation rule: "servers are
//!   grouped into the same data center if they are located in the same
//!   city", with /24-mates always landing together.
//!
//! # Examples
//!
//! ```
//! use ytcdn_geomodel::{CityDb, Coord};
//! use ytcdn_netsim::{planetlab_landmarks, AccessKind, DelayModel, Endpoint};
//! use ytcdn_geoloc::Cbg;
//!
//! let landmarks = planetlab_landmarks(1);
//! let cbg = Cbg::calibrate(landmarks, DelayModel::default(), 3, 7);
//! let target = Endpoint::new(CityDb::builtin().named("Paris").coord, AccessKind::DataCenter);
//! let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);
//! let result = cbg.localize(&target, &mut rng);
//! let err = result.estimate.distance_km(target.coord);
//! assert!(err < 500.0, "estimate {} km off", err);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cbg;
mod cluster;
mod ipdb;
mod shortest_ping;

pub use cbg::{Cbg, CbgResult};
pub use cluster::{cluster_by_city, CityCluster};
pub use ipdb::MaxmindLike;
pub use shortest_ping::{ShortestPing, ShortestPingResult};
