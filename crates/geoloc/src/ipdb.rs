//! The IP-geolocation-database baseline.
//!
//! Section V of the paper: "according to the Maxmind database, all YouTube
//! content servers found in the datasets should be located in Mountain View,
//! California, USA" — which RTT measurements immediately falsify. This
//! module reproduces that failure mode: a prefix database that knows
//! consumer ISP ranges reasonably well but maps every address of a large
//! corporate network to the company's headquarters.

use std::net::Ipv4Addr;

use ytcdn_geomodel::{CityDb, Coord};
use ytcdn_netsim::Ipv4Block;

/// A toy IP-to-location database with MaxMind's 2010-era blind spot.
///
/// # Examples
///
/// ```
/// use ytcdn_geoloc::MaxmindLike;
/// use ytcdn_geomodel::CityDb;
///
/// let db = MaxmindLike::with_hq_default();
/// // Any unregistered (corporate CDN) address resolves to Mountain View.
/// let mv = CityDb::builtin().named("Mountain View").coord;
/// let got = db.geolocate("74.125.13.7".parse()?);
/// assert!(got.distance_km(mv) < 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct MaxmindLike {
    entries: Vec<(Ipv4Block, Coord)>,
    default: Coord,
}

impl MaxmindLike {
    /// A database whose fallback for unknown prefixes is Google's
    /// headquarters in Mountain View — the paper's observed behaviour.
    pub fn with_hq_default() -> Self {
        let mv = CityDb::builtin().named("Mountain View").coord;
        Self {
            entries: Vec::new(),
            default: mv,
        }
    }

    /// A database with an explicit fallback location.
    pub fn with_default(default: Coord) -> Self {
        Self {
            entries: Vec::new(),
            default,
        }
    }

    /// Registers a known prefix (e.g. a consumer ISP range).
    pub fn register(&mut self, block: Ipv4Block, location: Coord) {
        self.entries.push((block, location));
    }

    /// Number of registered prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no prefixes are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks an address up: longest registered prefix, or the fallback.
    pub fn geolocate(&self, addr: Ipv4Addr) -> Coord {
        self.entries
            .iter()
            .filter(|(b, _)| b.contains(addr))
            .max_by_key(|(b, _)| b.prefix_len())
            .map(|&(_, c)| c)
            .unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_goes_to_default() {
        let db = MaxmindLike::with_hq_default();
        let a = db.geolocate("74.125.99.1".parse().unwrap());
        let b = db.geolocate("208.117.230.9".parse().unwrap());
        // Both "located" in the same place although the real servers could
        // be continents apart — the failure the paper demonstrates.
        assert_eq!(a, b);
    }

    #[test]
    fn registered_prefix_wins() {
        let mut db = MaxmindLike::with_hq_default();
        let turin = CityDb::builtin().named("Turin").coord;
        db.register("151.38.0.0/16".parse().unwrap(), turin);
        assert_eq!(db.geolocate("151.38.4.4".parse().unwrap()), turin);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn longest_prefix_match() {
        let mut db = MaxmindLike::with_hq_default();
        let turin = CityDb::builtin().named("Turin").coord;
        let milan = CityDb::builtin().named("Milan").coord;
        db.register("151.0.0.0/8".parse().unwrap(), turin);
        db.register("151.38.0.0/16".parse().unwrap(), milan);
        assert_eq!(db.geolocate("151.38.1.1".parse().unwrap()), milan);
        assert_eq!(db.geolocate("151.99.1.1".parse().unwrap()), turin);
    }

    #[test]
    fn custom_default() {
        let paris = CityDb::builtin().named("Paris").coord;
        let db = MaxmindLike::with_default(paris);
        assert_eq!(db.geolocate("1.2.3.4".parse().unwrap()), paris);
        assert!(db.is_empty());
    }
}
