//! Constraint-Based Geolocation (CBG).
//!
//! CBG (Gueye, Ziviani, Crovella, Fdida — IEEE/ACM ToN 2006) turns each
//! landmark's RTT measurement into a *distance upper bound* and intersects
//! the resulting disks: the target must lie inside every disk, so the
//! intersection is a confidence region whose centroid is the position
//! estimate and whose radius quantifies the uncertainty (the paper's
//! Figure 3 reports exactly this radius: median 41 km, 90th percentile
//! 200–320 km).
//!
//! The RTT→distance conversion is calibrated per landmark with a
//! **bestline**: the line `rtt = m·d + b` lying below all (distance, RTT)
//! points the landmark measures toward the *other* landmarks (whose
//! positions are known). This implementation fixes the slope at the
//! physical fiber bound and fits the intercept, which is the conservative
//! variant: radii can only be slightly loose, and a relaxation loop handles
//! the rare under-estimate that makes the intersection empty.

use serde::{Deserialize, Serialize};

use ytcdn_geomodel::{Coord, FIBER_KM_PER_MS};
use ytcdn_netsim::{DelayModel, Endpoint, Landmark, NoiseRng, Pinger};

/// Result of localizing one target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbgResult {
    /// Centroid of the feasible region.
    pub estimate: Coord,
    /// Radius of the confidence region, km (max distance from the centroid
    /// to any feasible point, plus the grid quantum).
    pub radius_km: f64,
    /// Number of grid points found feasible.
    pub feasible_points: usize,
    /// How many times the radii had to be relaxed by 5 % to make the
    /// intersection non-empty (0 in the common case).
    pub relaxations: u32,
}

/// A calibrated CBG instance.
///
/// Create with [`Cbg::calibrate`]; localize targets with [`Cbg::localize`].
#[derive(Debug, Clone)]
pub struct Cbg {
    landmarks: Vec<Landmark>,
    /// Landmark endpoints, precomputed once (localize probes every
    /// landmark per target).
    endpoints: Vec<Endpoint>,
    /// Bestline intercept per landmark (ms). Slope is the fiber bound.
    intercepts: Vec<f64>,
    /// The probe engine, built once at calibration instead of per
    /// `localize` call.
    pinger: Pinger,
    /// Bestline slope (ms/km), hoisted out of the localize hot loop.
    slope: f64,
}

/// Bestline slope: ms of RTT per km of distance at fiber speed.
fn slope_ms_per_km() -> f64 {
    2.0 / FIBER_KM_PER_MS
}

impl Cbg {
    /// Calibrates bestlines by measuring every landmark against every other
    /// landmark (positions known).
    ///
    /// `probes` is the per-measurement probe count; `seed` makes the
    /// calibration deterministic.
    ///
    /// # Panics
    ///
    /// Panics with fewer than 3 landmarks — the intersection would be
    /// meaningless.
    pub fn calibrate(landmarks: Vec<Landmark>, model: DelayModel, probes: u32, seed: u64) -> Self {
        assert!(landmarks.len() >= 3, "CBG needs at least 3 landmarks");
        let pinger = Pinger::new(model, probes);
        let mut rng = NoiseRng::seed_from_u64(seed);
        let m = slope_ms_per_km();
        let intercepts = landmarks
            .iter()
            .map(|li| {
                let ei = li.endpoint();
                landmarks
                    .iter()
                    .filter(|lj| lj.name != li.name)
                    .map(|lj| {
                        let d = li.coord.distance_km(lj.coord);
                        let rtt = pinger.ping(&ei, &lj.endpoint(), &mut rng).min_ms;
                        rtt - m * d
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let endpoints = landmarks.iter().map(Landmark::endpoint).collect();
        Self {
            landmarks,
            endpoints,
            intercepts,
            pinger,
            slope: m,
        }
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// The bestline intercept of landmark `i`, ms.
    pub fn intercept(&self, i: usize) -> f64 {
        self.intercepts[i]
    }

    /// Localizes a target endpoint.
    ///
    /// The endpoint's coordinates are used only to *generate* the RTT
    /// measurements through the delay model — exactly the information a real
    /// probe would obtain — never read directly by the solver.
    pub fn localize(&self, target: &Endpoint, rng: &mut NoiseRng) -> CbgResult {
        // Distance upper bound per landmark.
        let mut constraints: Vec<(Coord, f64)> = self
            .landmarks
            .iter()
            .zip(&self.endpoints)
            .zip(&self.intercepts)
            .map(|((l, e), &b)| {
                let rtt = self.pinger.ping(e, target, rng).min_ms;
                (l.coord, ((rtt - b) / self.slope).max(10.0))
            })
            .collect();
        // Tightest constraints first: they define the region and let
        // infeasible candidates fail fast.
        constraints.sort_by(|a, b| a.1.total_cmp(&b.1));

        let mut scale = 1.0;
        let mut relaxations = 0u32;
        loop {
            if let Some(result) = self.solve(&constraints, scale, relaxations) {
                return result;
            }
            relaxations += 1;
            scale *= 1.05;
            if relaxations > 120 {
                // Degenerate measurement; fall back to the tightest
                // landmark's position with its radius.
                let (anchor, r) = constraints[0];
                return CbgResult {
                    estimate: anchor,
                    radius_km: r * scale,
                    feasible_points: 0,
                    relaxations,
                };
            }
        }
    }

    /// Grid-searches the disk of the tightest constraint for feasible
    /// points; `None` if the intersection is empty at this scale.
    ///
    /// Two-phase search: a coarse pass over the whole disk locates the
    /// feasible region, a refinement pass at 4× resolution over its
    /// bounding box tightens the centroid and the reported radius.
    fn solve(
        &self,
        constraints: &[(Coord, f64)],
        scale: f64,
        relaxations: u32,
    ) -> Option<CbgResult> {
        const GRID: i32 = 16; // (2·16+1)² = 1089 candidates per pass
        let (anchor, r0) = constraints[0];
        let r = r0 * scale;
        let coarse_step = r / GRID as f64;
        let coarse = grid_pass(constraints, scale, anchor, r, coarse_step);
        if coarse.is_empty() {
            return None;
        }
        // Refine over the coarse feasible set's bounding disk. The coarse
        // set was checked non-empty above, so the centroid always exists;
        // `?` keeps the path panic-free regardless.
        let coarse_centroid = Coord::centroid(coarse.iter().copied())?;
        let coarse_radius = coarse
            .iter()
            .map(|p| coarse_centroid.distance_km(*p))
            .fold(0.0, f64::max)
            + coarse_step;
        let fine_step = (coarse_radius / GRID as f64).max(coarse_step / 8.0);
        let fine = grid_pass(
            constraints,
            scale,
            coarse_centroid,
            coarse_radius,
            fine_step,
        );
        let feasible = if fine.is_empty() { coarse } else { fine };
        let step_km = if feasible.len() == 1 {
            coarse_step
        } else {
            fine_step
        };
        let estimate = Coord::centroid(feasible.iter().copied())?;
        let radius_km = feasible
            .iter()
            .map(|p| estimate.distance_km(*p))
            .fold(0.0, f64::max)
            + step_km;
        Some(CbgResult {
            estimate,
            radius_km,
            feasible_points: feasible.len(),
            relaxations,
        })
    }
}

/// One rectangular-grid feasibility pass over the disk `(center, radius)`.
fn grid_pass(
    constraints: &[(Coord, f64)],
    scale: f64,
    center: Coord,
    radius_km: f64,
    step_km: f64,
) -> Vec<Coord> {
    let n = (radius_km / step_km).ceil() as i32;
    let coslat = center.lat.to_radians().cos().max(0.05);
    // Prune constraints that cannot reject *any* candidate of this pass.
    // Every candidate sits within `n·step/111` degrees of latitude and
    // `n·step/(111·coslat)` degrees of longitude of `center` (that is how
    // the offsets below are generated), and one great-circle degree is
    // < 111.2 km, so the meridian-then-parallel path bounds a candidate's
    // geodesic distance from `center` by `reach_km`. A constraint whose
    // disk covers the whole reach — `d(center, c) + reach <= cr·scale` —
    // accepts every candidate, so dropping it changes nothing; the slack
    // absorbs floating-point error. Loose landmarks (most of a worldwide
    // set, for a well-measured target) vanish from the per-point loop.
    let reach_km = 111.2 * (n as f64 * step_km / 111.0) * (1.0 + 1.0 / coslat) + 0.5;
    let active: Vec<(Coord, f64)> = constraints
        .iter()
        .filter(|&&(c, cr)| center.distance_km(c) + reach_km > cr * scale)
        .copied()
        .collect();
    let mut feasible = Vec::new();
    for iy in -n..=n {
        for ix in -n..=n {
            let dx = ix as f64 * step_km;
            let dy = iy as f64 * step_km;
            if dx * dx + dy * dy > radius_km * radius_km {
                continue;
            }
            let lat = center.lat + dy / 111.0;
            let lon = center.lon + dx / (111.0 * coslat);
            if !(-90.0..=90.0).contains(&lat) {
                continue;
            }
            let p = Coord {
                lat,
                lon: (lon + 540.0).rem_euclid(360.0) - 180.0,
            };
            if active.iter().all(|&(c, cr)| p.distance_km(c) <= cr * scale) {
                feasible.push(p);
            }
        }
    }
    feasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytcdn_geomodel::CityDb;
    use ytcdn_geomodel::Continent;
    use ytcdn_geomodel::WORLD_CITIES;
    use ytcdn_netsim::{landmarks_with_counts, planetlab_landmarks, AccessKind};

    fn small_cbg() -> Cbg {
        // A reduced landmark set keeps the tests fast while preserving
        // worldwide coverage.
        let lms = landmarks_with_counts(
            3,
            &[
                (Continent::NorthAmerica, 20),
                (Continent::Europe, 20),
                (Continent::Asia, 8),
                (Continent::SouthAmerica, 3),
                (Continent::Oceania, 2),
            ],
        );
        Cbg::calibrate(lms, DelayModel::default(), 3, 11)
    }

    fn dc_at(city: &str) -> Endpoint {
        Endpoint::new(CityDb::builtin().named(city).coord, AccessKind::DataCenter)
    }

    #[test]
    fn localizes_european_target_to_right_area() {
        let cbg = small_cbg();
        let mut rng = NoiseRng::seed_from_u64(1);
        let target = dc_at("Paris");
        let r = cbg.localize(&target, &mut rng);
        let err = r.estimate.distance_km(target.coord);
        assert!(err < 400.0, "error {err} km, radius {}", r.radius_km);
    }

    #[test]
    fn localizes_us_target_to_right_area() {
        let cbg = small_cbg();
        let mut rng = NoiseRng::seed_from_u64(2);
        let target = dc_at("Chicago");
        let r = cbg.localize(&target, &mut rng);
        let err = r.estimate.distance_km(target.coord);
        assert!(err < 500.0, "error {err} km, radius {}", r.radius_km);
    }

    #[test]
    fn transcontinental_confusion_does_not_happen() {
        let cbg = small_cbg();
        let mut rng = NoiseRng::seed_from_u64(3);
        for city in ["Tokyo", "Sao Paulo", "Sydney"] {
            let target = dc_at(city);
            let r = cbg.localize(&target, &mut rng);
            let err = r.estimate.distance_km(target.coord);
            assert!(err < 1500.0, "{city}: error {err} km");
        }
    }

    #[test]
    fn radius_reflects_estimate_quality() {
        let cbg = small_cbg();
        let mut rng = NoiseRng::seed_from_u64(4);
        // A target in dense landmark territory gets a tighter region than
        // one in sparse territory.
        let dense = cbg.localize(&dc_at("Frankfurt"), &mut rng);
        let sparse = cbg.localize(&dc_at("Johannesburg"), &mut rng);
        assert!(
            dense.radius_km < sparse.radius_km,
            "dense {} vs sparse {}",
            dense.radius_km,
            sparse.radius_km
        );
    }

    #[test]
    fn intercepts_are_positive_and_bounded() {
        let cbg = small_cbg();
        for i in 0..cbg.landmarks().len() {
            let b = cbg.intercept(i);
            assert!(b > 0.0, "landmark {i} intercept {b}");
            assert!(b < 50.0, "landmark {i} intercept {b}");
        }
    }

    #[test]
    fn deterministic_given_same_rng_seed() {
        let cbg = small_cbg();
        let t = dc_at("Madrid");
        let a = cbg.localize(&t, &mut NoiseRng::seed_from_u64(7));
        let b = cbg.localize(&t, &mut NoiseRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    /// The pre-pruning `grid_pass`: every constraint checked at every
    /// candidate. The optimized pass must reproduce its output exactly.
    fn grid_pass_unpruned(
        constraints: &[(Coord, f64)],
        scale: f64,
        center: Coord,
        radius_km: f64,
        step_km: f64,
    ) -> Vec<Coord> {
        let n = (radius_km / step_km).ceil() as i32;
        let coslat = center.lat.to_radians().cos().max(0.05);
        let mut feasible = Vec::new();
        for iy in -n..=n {
            for ix in -n..=n {
                let dx = ix as f64 * step_km;
                let dy = iy as f64 * step_km;
                if dx * dx + dy * dy > radius_km * radius_km {
                    continue;
                }
                let lat = center.lat + dy / 111.0;
                let lon = center.lon + dx / (111.0 * coslat);
                if !(-90.0..=90.0).contains(&lat) {
                    continue;
                }
                let p = Coord {
                    lat,
                    lon: (lon + 540.0).rem_euclid(360.0) - 180.0,
                };
                if constraints
                    .iter()
                    .all(|&(c, cr)| p.distance_km(c) <= cr * scale)
                {
                    feasible.push(p);
                }
            }
        }
        feasible
    }

    #[test]
    fn constraint_pruning_preserves_feasible_sets() {
        let db = CityDb::builtin();
        // Mixed tight and loose constraints around several centers,
        // including a high-latitude one where the lon/lat distortion the
        // reach bound must cover is largest.
        for (center_city, radius, step) in [
            ("Paris", 400.0, 25.0),
            ("Chicago", 900.0, 56.0),
            ("Helsinki", 1500.0, 93.0),
            ("Singapore", 700.0, 43.0),
        ] {
            let center = db.named(center_city).coord;
            let constraints: Vec<(Coord, f64)> = WORLD_CITIES
                .iter()
                .map(|c| {
                    let d = c.coord.distance_km(center);
                    // Tight disks near the center, generous ones far away
                    // (the far ones are the pruning candidates).
                    (c.coord, d + radius * 0.8)
                })
                .collect();
            for scale in [1.0, 1.05, 2.0] {
                let pruned = grid_pass(&constraints, scale, center, radius, step);
                let full = grid_pass_unpruned(&constraints, scale, center, radius, step);
                assert_eq!(pruned, full, "{center_city} scale {scale}");
                assert!(!full.is_empty(), "{center_city} scale {scale}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 landmarks")]
    fn too_few_landmarks_rejected() {
        let lms = planetlab_landmarks(0)[..2].to_vec();
        let _ = Cbg::calibrate(lms, DelayModel::default(), 3, 0);
    }

    #[test]
    fn more_landmarks_do_not_hurt_much() {
        // Sanity for the landmark-count ablation: 215 landmarks should be at
        // least roughly as accurate as 50 on a European target.
        let big = Cbg::calibrate(planetlab_landmarks(5), DelayModel::default(), 3, 5);
        let small = small_cbg();
        let t = dc_at("Milan");
        let rb = big.localize(&t, &mut NoiseRng::seed_from_u64(8));
        let rs = small.localize(&t, &mut NoiseRng::seed_from_u64(8));
        let eb = rb.estimate.distance_km(t.coord);
        let es = rs.estimate.distance_km(t.coord);
        assert!(eb < es + 300.0, "big {eb} vs small {es}");
    }
}
