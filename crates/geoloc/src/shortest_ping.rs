//! The Shortest-Ping baseline.
//!
//! The simplest delay-based geolocation scheme: declare the target to be at
//! the position of the landmark with the smallest RTT to it. CBG's original
//! evaluation (Gueye et al.) uses it as the baseline; it is accurate only
//! where the landmark set is dense, and it provides no confidence region.
//! We implement it both as a comparison point for CBG (the paper's choice)
//! and as a fast pre-filter.

use serde::{Deserialize, Serialize};

use ytcdn_geomodel::Coord;
use ytcdn_netsim::{DelayModel, Endpoint, Landmark, NoiseRng, Pinger};

/// Result of a shortest-ping localization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShortestPingResult {
    /// The estimate: the nearest landmark's position.
    pub estimate: Coord,
    /// Name of the winning landmark.
    pub landmark: String,
    /// Its measured min-RTT, ms.
    pub rtt_ms: f64,
}

/// Shortest-ping localizer over a landmark set.
///
/// # Examples
///
/// ```
/// use ytcdn_geoloc::ShortestPing;
/// use ytcdn_geomodel::CityDb;
/// use ytcdn_netsim::{planetlab_landmarks, AccessKind, DelayModel, Endpoint, NoiseRng};
///
/// let sp = ShortestPing::new(planetlab_landmarks(1), DelayModel::default(), 3);
/// let target = Endpoint::new(CityDb::builtin().named("Berlin").coord, AccessKind::DataCenter);
/// let mut rng = NoiseRng::seed_from_u64(5);
/// let r = sp.localize(&target, &mut rng);
/// assert!(r.estimate.distance_km(target.coord) < 800.0);
/// ```
#[derive(Debug, Clone)]
pub struct ShortestPing {
    landmarks: Vec<Landmark>,
    model: DelayModel,
    probes: u32,
}

impl ShortestPing {
    /// Creates a localizer.
    ///
    /// # Panics
    ///
    /// Panics if `landmarks` is empty.
    pub fn new(landmarks: Vec<Landmark>, model: DelayModel, probes: u32) -> Self {
        assert!(!landmarks.is_empty(), "shortest-ping needs landmarks");
        Self {
            landmarks,
            model,
            probes,
        }
    }

    /// The landmark set.
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// Localizes a target: pings it from every landmark and returns the
    /// closest landmark's position.
    pub fn localize(&self, target: &Endpoint, rng: &mut NoiseRng) -> ShortestPingResult {
        let pinger = Pinger::new(self.model, self.probes);
        let (lm, rtt) = self
            .landmarks
            .iter()
            .map(|l| (l, pinger.ping(&l.endpoint(), target, rng).min_ms))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // ytcdn-lint: allow(PAN001) — landmark sets are built from the static city table and are never empty
            .expect("landmark set is non-empty");
        ShortestPingResult {
            estimate: lm.coord,
            landmark: lm.name.clone(),
            rtt_ms: rtt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ytcdn_geomodel::{CityDb, Continent};
    use ytcdn_netsim::{landmarks_with_counts, planetlab_landmarks, AccessKind};

    fn target(city: &str) -> Endpoint {
        Endpoint::new(CityDb::builtin().named(city).coord, AccessKind::DataCenter)
    }

    #[test]
    fn finds_a_nearby_landmark() {
        let sp = ShortestPing::new(planetlab_landmarks(2), DelayModel::default(), 3);
        let mut rng = NoiseRng::seed_from_u64(1);
        let t = target("Chicago");
        let r = sp.localize(&t, &mut rng);
        assert!(
            r.estimate.distance_km(t.coord) < 700.0,
            "off by {} km via {}",
            r.estimate.distance_km(t.coord),
            r.landmark
        );
    }

    #[test]
    fn estimate_is_a_landmark_position() {
        let sp = ShortestPing::new(planetlab_landmarks(3), DelayModel::default(), 3);
        let mut rng = NoiseRng::seed_from_u64(2);
        let r = sp.localize(&target("Madrid"), &mut rng);
        assert!(sp
            .landmarks()
            .iter()
            .any(|l| l.name == r.landmark && l.coord == r.estimate));
    }

    #[test]
    fn degrades_where_landmarks_are_sparse() {
        // Only NA landmarks: an Asian target lands an ocean away.
        let sp = ShortestPing::new(
            landmarks_with_counts(1, &[(Continent::NorthAmerica, 10)]),
            DelayModel::default(),
            3,
        );
        let mut rng = NoiseRng::seed_from_u64(3);
        let t = target("Tokyo");
        let r = sp.localize(&t, &mut rng);
        assert!(r.estimate.distance_km(t.coord) > 3_000.0);
    }

    #[test]
    #[should_panic(expected = "needs landmarks")]
    fn empty_landmarks_rejected() {
        let _ = ShortestPing::new(vec![], DelayModel::default(), 3);
    }
}
