//! Grouping geolocated servers into data centers.
//!
//! Section V: "servers are grouped into the same data center if they are
//! located in the same city according to CBG. We note that all servers with
//! IP addresses in the same /24 subnet are always aggregated to the same
//! data center using this approach."
//!
//! [`cluster_by_city`] implements that rule: each /24 is assigned the city
//! nearest to the centroid of its members' CBG estimates, and clusters are
//! keyed by city.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use ytcdn_geomodel::{City, CityDb, Coord};
use ytcdn_netsim::Ipv4Block;

/// A data center inferred from geolocation: a city plus the servers
/// clustered there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityCluster {
    /// The city the cluster was assigned to.
    pub city_name: String,
    /// City coordinates.
    pub city_coord: Coord,
    /// Member servers.
    pub servers: Vec<Ipv4Addr>,
}

impl CityCluster {
    /// Number of servers in the cluster.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Whether the cluster is empty (not produced by [`cluster_by_city`]).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }
}

/// Clusters `(server, estimated position)` pairs into data centers.
///
/// Steps: group servers by /24 → average each /24's estimates → snap the
/// average to the nearest city in `cities` → merge /24s snapped to the same
/// city. Output is sorted by descending cluster size, ties by city name.
pub fn cluster_by_city(estimates: &[(Ipv4Addr, Coord)], cities: &CityDb) -> Vec<CityCluster> {
    // Group estimates by /24.
    let mut by_block: BTreeMap<Ipv4Block, Vec<(Ipv4Addr, Coord)>> = BTreeMap::new();
    for &(ip, coord) in estimates {
        by_block
            .entry(Ipv4Block::slash24_of(ip))
            .or_default()
            .push((ip, coord));
    }
    // Snap each /24 to a city.
    let mut by_city: BTreeMap<&'static str, (&'static City, Vec<Ipv4Addr>)> = BTreeMap::new();
    for members in by_block.into_values() {
        // Block groups are non-empty by construction (each came from at
        // least one estimate); skip defensively rather than panic.
        let Some(centroid) = Coord::centroid(members.iter().map(|&(_, c)| c)) else {
            continue;
        };
        let (city, _) = cities.nearest(centroid);
        let entry = by_city
            .entry(city.name)
            .or_insert_with(|| (city, Vec::new()));
        entry.1.extend(members.iter().map(|&(ip, _)| ip));
    }
    let mut clusters: Vec<CityCluster> = by_city
        .into_values()
        .map(|(city, mut servers)| {
            servers.sort();
            CityCluster {
                city_name: city.name.to_owned(),
                city_coord: city.coord,
                servers,
            }
        })
        .collect();
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then(a.city_name.cmp(&b.city_name)));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord_of(name: &str) -> Coord {
        CityDb::builtin().named(name).coord
    }

    #[test]
    fn same_slash24_always_together() {
        let cities = CityDb::builtin();
        // Two servers of one /24 with estimates pulled toward different
        // cities still end in a single cluster.
        let estimates = vec![
            ("74.125.1.1".parse().unwrap(), coord_of("Milan")),
            (
                "74.125.1.2".parse().unwrap(),
                coord_of("Milan").offset_km(200.0, 120.0),
            ),
        ];
        let clusters = cluster_by_city(&estimates, &cities);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn distinct_cities_form_distinct_clusters() {
        let cities = CityDb::builtin();
        let estimates = vec![
            ("74.125.1.1".parse().unwrap(), coord_of("Milan")),
            ("74.125.2.1".parse().unwrap(), coord_of("Tokyo")),
            ("74.125.3.1".parse().unwrap(), coord_of("Chicago")),
        ];
        let clusters = cluster_by_city(&estimates, &cities);
        assert_eq!(clusters.len(), 3);
        let names: Vec<_> = clusters.iter().map(|c| c.city_name.as_str()).collect();
        assert!(names.contains(&"Milan"));
        assert!(names.contains(&"Tokyo"));
        assert!(names.contains(&"Chicago"));
    }

    #[test]
    fn noisy_estimates_snap_to_nearest_city() {
        let cities = CityDb::builtin();
        // 30 km off Paris still clusters as Paris.
        let near_paris = coord_of("Paris").offset_km(45.0, 30.0);
        let clusters = cluster_by_city(&[("74.125.9.9".parse().unwrap(), near_paris)], &cities);
        assert_eq!(clusters[0].city_name, "Paris");
    }

    #[test]
    fn different_slash24s_same_city_merge() {
        let cities = CityDb::builtin();
        let estimates = vec![
            ("74.125.1.1".parse().unwrap(), coord_of("Milan")),
            (
                "74.125.2.1".parse().unwrap(),
                coord_of("Milan").offset_km(10.0, 5.0),
            ),
        ];
        let clusters = cluster_by_city(&estimates, &cities);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn sorted_by_size_desc() {
        let cities = CityDb::builtin();
        let mut estimates = vec![("74.125.9.1".parse().unwrap(), coord_of("Tokyo"))];
        for i in 0..5u8 {
            estimates.push((format!("74.125.1.{i}").parse().unwrap(), coord_of("Milan")));
        }
        let clusters = cluster_by_city(&estimates, &cities);
        assert_eq!(clusters[0].city_name, "Milan");
        assert_eq!(clusters[0].len(), 5);
        assert_eq!(clusters[1].len(), 1);
    }

    #[test]
    fn empty_input_empty_output() {
        let cities = CityDb::builtin();
        assert!(cluster_by_city(&[], &cities).is_empty());
    }
}
