//! Geographic substrate for the YouTube CDN reproduction.
//!
//! The measurement study this workspace reproduces ("Dissecting Video Server
//! Selection Strategies in the YouTube CDN", ICDCS 2011) reasons about the
//! physical placement of clients, landmarks, and data centers: round-trip
//! times are bounded below by speed-of-light propagation, CBG geolocation
//! triangulates hosts from delay measurements, and servers are clustered into
//! data centers by city. This crate provides the geometric primitives those
//! layers share:
//!
//! * [`Coord`] — a WGS84 latitude/longitude pair with great-circle
//!   ([haversine](Coord::distance_km)) distance,
//! * [`Continent`] — the coarse regions used by the paper's Table III,
//! * [`City`] and [`CityDb`] — a built-in database of world cities at which
//!   vantage points, landmarks, and data centers are placed,
//! * propagation constants used by the delay model and by CBG's physical
//!   lower bound.
//!
//! # Examples
//!
//! ```
//! use ytcdn_geomodel::{CityDb, Coord};
//!
//! let db = CityDb::builtin();
//! let chicago = db.get("Chicago").unwrap();
//! let amsterdam = db.get("Amsterdam").unwrap();
//! let km = chicago.coord.distance_km(amsterdam.coord);
//! assert!((6600.0..6800.0).contains(&km), "got {km}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod city;
mod continent;
mod coord;

pub use city::{City, CityDb, WORLD_CITIES};
pub use continent::{Continent, ParseContinentError, Table3Bucket};
pub use coord::{Coord, InvalidCoordError};

/// Speed of light in vacuum, km per millisecond.
pub const SPEED_OF_LIGHT_KM_PER_MS: f64 = 299.792_458;

/// Effective signal speed in optical fiber, km per millisecond.
///
/// Light in fiber propagates at roughly 2/3 of `c`; this is the constant CBG
/// and the delay model use to convert between distance and the *minimum*
/// possible one-way delay.
pub const FIBER_KM_PER_MS: f64 = SPEED_OF_LIGHT_KM_PER_MS * 2.0 / 3.0;

/// Mean Earth radius in kilometers (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Lower bound on the RTT (in ms) between two points `km` apart.
///
/// This is the physical constraint CBG relies on: a signal cannot do the
/// round trip faster than fiber-speed propagation along the great circle.
///
/// # Examples
///
/// ```
/// let rtt = ytcdn_geomodel::min_rtt_ms(1000.0);
/// assert!((10.0..10.1).contains(&rtt));
/// ```
pub fn min_rtt_ms(km: f64) -> f64 {
    2.0 * km / FIBER_KM_PER_MS
}

/// Upper bound on the distance (in km) implied by an RTT measurement.
///
/// Inverse of [`min_rtt_ms`]: a host whose RTT is `rtt_ms` can be at most
/// this many kilometers away. This is the radius CBG draws around each
/// landmark before tightening it with the calibrated bestline.
pub fn max_distance_km(rtt_ms: f64) -> f64 {
    rtt_ms * FIBER_KM_PER_MS / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_rtt_and_max_distance_are_inverse() {
        for km in [1.0, 10.0, 500.0, 12000.0] {
            let rtt = min_rtt_ms(km);
            let back = max_distance_km(rtt);
            assert!((back - km).abs() < 1e-9);
        }
    }

    #[test]
    fn fiber_speed_is_two_thirds_c() {
        assert!((FIBER_KM_PER_MS - 199.861).abs() < 0.01);
    }

    #[test]
    fn zero_distance_zero_rtt() {
        assert_eq!(min_rtt_ms(0.0), 0.0);
        assert_eq!(max_distance_km(0.0), 0.0);
    }
}
