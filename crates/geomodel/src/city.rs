//! A built-in database of world cities.
//!
//! Vantage points, CBG landmarks, and data centers are all placed at cities
//! from this table. Coordinates are approximate city centers; the delay model
//! adds far more noise than the coordinate error.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::{Continent, Coord};

/// A named city with its coordinates and continent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// Human-readable city name, unique within the database.
    pub name: &'static str,
    /// ISO-3166-ish two letter country code.
    pub country: &'static str,
    /// City-center coordinates.
    pub coord: Coord,
    /// Continent the city belongs to.
    pub continent: Continent,
}

macro_rules! city {
    ($name:literal, $country:literal, $lat:literal, $lon:literal, $cont:ident) => {
        City {
            name: $name,
            country: $country,
            coord: Coord::new_unchecked($lat, $lon),
            continent: Continent::$cont,
        }
    };
}

/// The raw city table backing [`CityDb::builtin`].
///
/// North America is deliberately dense (the paper finds 13 US data centers
/// and uses 97 North-American landmarks), Europe next (14 data centers,
/// 82 landmarks), with enough coverage elsewhere for the remaining landmarks
/// and data centers.
pub const WORLD_CITIES: &[City] = &[
    // --- North America (US) ---
    city!("New York", "US", 40.7128, -74.0060, NorthAmerica),
    city!("Los Angeles", "US", 34.0522, -118.2437, NorthAmerica),
    city!("Chicago", "US", 41.8781, -87.6298, NorthAmerica),
    city!("Houston", "US", 29.7604, -95.3698, NorthAmerica),
    city!("Phoenix", "US", 33.4484, -112.0740, NorthAmerica),
    city!("Philadelphia", "US", 39.9526, -75.1652, NorthAmerica),
    city!("San Antonio", "US", 29.4241, -98.4936, NorthAmerica),
    city!("San Diego", "US", 32.7157, -117.1611, NorthAmerica),
    city!("Dallas", "US", 32.7767, -96.7970, NorthAmerica),
    city!("San Jose", "US", 37.3382, -121.8863, NorthAmerica),
    city!("Mountain View", "US", 37.3861, -122.0839, NorthAmerica),
    city!("Austin", "US", 30.2672, -97.7431, NorthAmerica),
    city!("Columbus", "US", 39.9612, -82.9988, NorthAmerica),
    city!("Indianapolis", "US", 39.7684, -86.1581, NorthAmerica),
    city!("West Lafayette", "US", 40.4259, -86.9081, NorthAmerica),
    city!("Charlotte", "US", 35.2271, -80.8431, NorthAmerica),
    city!("Seattle", "US", 47.6062, -122.3321, NorthAmerica),
    city!("Denver", "US", 39.7392, -104.9903, NorthAmerica),
    city!("Washington DC", "US", 38.9072, -77.0369, NorthAmerica),
    city!("Boston", "US", 42.3601, -71.0589, NorthAmerica),
    city!("Nashville", "US", 36.1627, -86.7816, NorthAmerica),
    city!("Portland", "US", 45.5152, -122.6784, NorthAmerica),
    city!("Las Vegas", "US", 36.1699, -115.1398, NorthAmerica),
    city!("Detroit", "US", 42.3314, -83.0458, NorthAmerica),
    city!("Memphis", "US", 35.1495, -90.0490, NorthAmerica),
    city!("Atlanta", "US", 33.7490, -84.3880, NorthAmerica),
    city!("Miami", "US", 25.7617, -80.1918, NorthAmerica),
    city!("Minneapolis", "US", 44.9778, -93.2650, NorthAmerica),
    city!("Tulsa", "US", 36.1540, -95.9928, NorthAmerica),
    city!("Kansas City", "US", 39.0997, -94.5786, NorthAmerica),
    city!("St Louis", "US", 38.6270, -90.1994, NorthAmerica),
    city!("Pittsburgh", "US", 40.4406, -79.9959, NorthAmerica),
    city!("Salt Lake City", "US", 40.7608, -111.8910, NorthAmerica),
    city!("Council Bluffs", "US", 41.2619, -95.8608, NorthAmerica),
    city!("The Dalles", "US", 45.5946, -121.1787, NorthAmerica),
    city!("Lenoir", "US", 35.9140, -81.5390, NorthAmerica),
    city!("Moncks Corner", "US", 33.1960, -80.0131, NorthAmerica),
    city!("Ashburn", "US", 39.0438, -77.4874, NorthAmerica),
    // --- North America (CA / MX) ---
    city!("Toronto", "CA", 43.6532, -79.3832, NorthAmerica),
    city!("Montreal", "CA", 45.5017, -73.5673, NorthAmerica),
    city!("Vancouver", "CA", 49.2827, -123.1207, NorthAmerica),
    city!("Calgary", "CA", 51.0447, -114.0719, NorthAmerica),
    city!("Mexico City", "MX", 19.4326, -99.1332, NorthAmerica),
    // --- Europe ---
    city!("London", "GB", 51.5074, -0.1278, Europe),
    city!("Paris", "FR", 48.8566, 2.3522, Europe),
    city!("Berlin", "DE", 52.5200, 13.4050, Europe),
    city!("Frankfurt", "DE", 50.1109, 8.6821, Europe),
    city!("Munich", "DE", 48.1351, 11.5820, Europe),
    city!("Hamburg", "DE", 53.5511, 9.9937, Europe),
    city!("Madrid", "ES", 40.4168, -3.7038, Europe),
    city!("Barcelona", "ES", 41.3851, 2.1734, Europe),
    city!("Rome", "IT", 41.9028, 12.4964, Europe),
    city!("Milan", "IT", 45.4642, 9.1900, Europe),
    city!("Turin", "IT", 45.0703, 7.6869, Europe),
    city!("Amsterdam", "NL", 52.3676, 4.9041, Europe),
    city!("Groningen", "NL", 53.2194, 6.5665, Europe),
    city!("Brussels", "BE", 50.8503, 4.3517, Europe),
    city!("St Ghislain", "BE", 50.4549, 3.8182, Europe),
    city!("Vienna", "AT", 48.2082, 16.3738, Europe),
    city!("Zurich", "CH", 47.3769, 8.5417, Europe),
    city!("Geneva", "CH", 46.2044, 6.1432, Europe),
    city!("Stockholm", "SE", 59.3293, 18.0686, Europe),
    city!("Oslo", "NO", 59.9139, 10.7522, Europe),
    city!("Copenhagen", "DK", 55.6761, 12.5683, Europe),
    city!("Helsinki", "FI", 60.1699, 24.9384, Europe),
    city!("Hamina", "FI", 60.5693, 27.1878, Europe),
    city!("Dublin", "IE", 53.3498, -6.2603, Europe),
    city!("Lisbon", "PT", 38.7223, -9.1393, Europe),
    city!("Warsaw", "PL", 52.2297, 21.0122, Europe),
    city!("Prague", "CZ", 50.0755, 14.4378, Europe),
    city!("Budapest", "HU", 47.4979, 19.0402, Europe),
    city!("Athens", "GR", 37.9838, 23.7275, Europe),
    city!("Bucharest", "RO", 44.4268, 26.1025, Europe),
    city!("Sofia", "BG", 42.6977, 23.3219, Europe),
    city!("Lyon", "FR", 45.7640, 4.8357, Europe),
    city!("Marseille", "FR", 43.2965, 5.3698, Europe),
    city!("Manchester", "GB", 53.4808, -2.2426, Europe),
    city!("Edinburgh", "GB", 55.9533, -3.1883, Europe),
    city!("Moscow", "RU", 55.7558, 37.6173, Europe),
    city!("Kyiv", "UA", 50.4501, 30.5234, Europe),
    city!("Zagreb", "HR", 45.8150, 15.9819, Europe),
    city!("Belgrade", "RS", 44.7866, 20.4489, Europe),
    // --- Asia ---
    city!("Tokyo", "JP", 35.6762, 139.6503, Asia),
    city!("Osaka", "JP", 34.6937, 135.5023, Asia),
    city!("Seoul", "KR", 37.5665, 126.9780, Asia),
    city!("Beijing", "CN", 39.9042, 116.4074, Asia),
    city!("Shanghai", "CN", 31.2304, 121.4737, Asia),
    city!("Hong Kong", "HK", 22.3193, 114.1694, Asia),
    city!("Taipei", "TW", 25.0330, 121.5654, Asia),
    city!("Singapore", "SG", 1.3521, 103.8198, Asia),
    city!("Bangkok", "TH", 13.7563, 100.5018, Asia),
    city!("Kuala Lumpur", "MY", 3.1390, 101.6869, Asia),
    city!("Jakarta", "ID", -6.2088, 106.8456, Asia),
    city!("Mumbai", "IN", 19.0760, 72.8777, Asia),
    city!("Delhi", "IN", 28.7041, 77.1025, Asia),
    city!("Bangalore", "IN", 12.9716, 77.5946, Asia),
    city!("Tel Aviv", "IL", 32.0853, 34.7818, Asia),
    city!("Dubai", "AE", 25.2048, 55.2708, Asia),
    city!("Manila", "PH", 14.5995, 120.9842, Asia),
    // --- South America ---
    city!("Sao Paulo", "BR", -23.5505, -46.6333, SouthAmerica),
    city!("Rio de Janeiro", "BR", -22.9068, -43.1729, SouthAmerica),
    city!("Buenos Aires", "AR", -34.6037, -58.3816, SouthAmerica),
    city!("Santiago", "CL", -33.4489, -70.6693, SouthAmerica),
    city!("Bogota", "CO", 4.7110, -74.0721, SouthAmerica),
    city!("Lima", "PE", -12.0464, -77.0428, SouthAmerica),
    city!("Quito", "EC", -0.1807, -78.4678, SouthAmerica),
    city!("Montevideo", "UY", -34.9011, -56.1645, SouthAmerica),
    // --- Africa ---
    city!("Johannesburg", "ZA", -26.2041, 28.0473, Africa),
    city!("Cape Town", "ZA", -33.9249, 18.4241, Africa),
    city!("Nairobi", "KE", -1.2921, 36.8219, Africa),
    city!("Lagos", "NG", 6.5244, 3.3792, Africa),
    city!("Cairo", "EG", 30.0444, 31.2357, Africa),
    // --- Oceania ---
    city!("Sydney", "AU", -33.8688, 151.2093, Oceania),
    city!("Melbourne", "AU", -37.8136, 144.9631, Oceania),
    city!("Brisbane", "AU", -27.4698, 153.0251, Oceania),
    city!("Auckland", "NZ", -36.8485, 174.7633, Oceania),
];

/// Lookup table over [`WORLD_CITIES`].
///
/// # Examples
///
/// ```
/// use ytcdn_geomodel::{CityDb, Continent};
///
/// let db = CityDb::builtin();
/// assert_eq!(db.get("Turin").unwrap().continent, Continent::Europe);
/// assert!(db.in_continent(Continent::NorthAmerica).count() >= 30);
/// ```
#[derive(Debug, Clone)]
pub struct CityDb {
    by_name: HashMap<&'static str, &'static City>,
}

impl CityDb {
    /// Returns the built-in world city database.
    pub fn builtin() -> Self {
        let by_name = WORLD_CITIES.iter().map(|c| (c.name, c)).collect();
        Self { by_name }
    }

    /// Looks a city up by exact name.
    pub fn get(&self, name: &str) -> Option<&'static City> {
        self.by_name.get(name).copied()
    }

    /// Like [`CityDb::get`] but panics with a clear message; for use with the
    /// crate's own well-known names. (Deliberately not called `expect` so
    /// panic-path call sites stay greppable/lintable as `unwrap`/`expect`.)
    ///
    /// # Panics
    ///
    /// Panics if `name` is not in the database.
    pub fn named(&self, name: &str) -> &'static City {
        self.get(name)
            .unwrap_or_else(|| panic!("city {name:?} not in the built-in database"))
    }

    /// Iterates over all cities.
    pub fn iter(&self) -> impl Iterator<Item = &'static City> + '_ {
        WORLD_CITIES.iter()
    }

    /// Iterates over cities in the given continent, in table order.
    pub fn in_continent(&self, continent: Continent) -> impl Iterator<Item = &'static City> + '_ {
        WORLD_CITIES
            .iter()
            .filter(move |c| c.continent == continent)
    }

    /// Number of cities in the database.
    pub fn len(&self) -> usize {
        WORLD_CITIES.len()
    }

    /// Whether the database is empty (never, for the built-in table).
    pub fn is_empty(&self) -> bool {
        WORLD_CITIES.is_empty()
    }

    /// Returns the city nearest to `coord`, together with the distance in km.
    ///
    /// Used to label CBG position estimates with a city ("servers are grouped
    /// into the same data center if they are located in the same city").
    ///
    /// Answers come from a lat/lon bucket grid whose per-cell candidate
    /// lists are proved complete by the triangle inequality (see
    /// [`NearestGrid`]), so the result — including tie-breaking, which
    /// follows [`WORLD_CITIES`] table order in both paths — is identical to
    /// a full linear scan, only without touching the whole table per query.
    pub fn nearest(&self, coord: Coord) -> (&'static City, f64) {
        NearestGrid::builtin().nearest(coord)
    }
}

/// Bucket grid over [`WORLD_CITIES`] for exact nearest-city lookup.
///
/// The globe is cut into `CELL_DEG`-degree lat/lon cells. Each cell stores,
/// in table order, every city that could possibly be the nearest to *some*
/// point of the cell. Completeness argument: let `m` be the center of a
/// cell, `rho` its circumradius (every point of the cell is within `rho`
/// of `m`; for a lat/lon-aligned cell the farthest boundary point from the
/// midpoint is a corner), and `dmin` the distance from `m` to its nearest
/// city `c0`. For a query `q` in the cell with true nearest city `c*`:
///
/// ```text
/// d(c*, m) <= d(c*, q) + rho        (triangle inequality)
///          <= d(c0, q) + rho        (c* is nearest to q)
///          <= dmin + 2 rho          (triangle inequality again)
/// ```
///
/// so keeping every city within `dmin + 2 rho` (+ a float-slack epsilon)
/// of the center keeps `c*` — and every city tied with it — making the
/// grid answer, ties included, equal to the linear scan's. The "neighbor
/// ring" a bucket grid normally probes at query time is thus baked into
/// the candidate lists at build time.
#[derive(Debug)]
struct NearestGrid {
    /// `GRID_ROWS * GRID_COLS` candidate lists, row-major from the south
    /// pole / date line corner.
    cells: Vec<Vec<&'static City>>,
}

/// Cell edge length in degrees (both axes).
const CELL_DEG: f64 = 10.0;
/// Latitude rows covering [-90, 90].
const GRID_ROWS: usize = 18;
/// Longitude columns covering [-180, 180].
const GRID_COLS: usize = 36;
/// Slack added to the candidate bound to absorb floating-point error in
/// the distance computations (km) — vastly above any haversine rounding.
const GRID_SLACK_KM: f64 = 1.0;

impl NearestGrid {
    /// The process-wide grid over the static city table, built on first use.
    fn builtin() -> &'static Self {
        static GRID: OnceLock<NearestGrid> = OnceLock::new();
        GRID.get_or_init(Self::build)
    }

    fn build() -> Self {
        let mut cells = Vec::with_capacity(GRID_ROWS * GRID_COLS);
        for row in 0..GRID_ROWS {
            for col in 0..GRID_COLS {
                let lat0 = -90.0 + row as f64 * CELL_DEG;
                let lon0 = -180.0 + col as f64 * CELL_DEG;
                let center = Coord::new_unchecked(lat0 + CELL_DEG / 2.0, lon0 + CELL_DEG / 2.0);
                let rho = [
                    (lat0, lon0),
                    (lat0, lon0 + CELL_DEG),
                    (lat0 + CELL_DEG, lon0),
                    (lat0 + CELL_DEG, lon0 + CELL_DEG),
                ]
                .into_iter()
                .map(|(lat, lon)| center.distance_km(Coord::new_unchecked(lat, lon)))
                .fold(0.0_f64, f64::max);
                let dmin = WORLD_CITIES
                    .iter()
                    .map(|c| c.coord.distance_km(center))
                    .fold(f64::INFINITY, f64::min);
                let bound = dmin + 2.0 * rho + GRID_SLACK_KM;
                cells.push(
                    WORLD_CITIES
                        .iter()
                        .filter(|c| c.coord.distance_km(center) <= bound)
                        .collect(),
                );
            }
        }
        Self { cells }
    }

    /// The cell holding `coord`; boundary values (lat 90, lon 180) clamp
    /// into the last row/column.
    fn cell_index(coord: Coord) -> usize {
        let row = (((coord.lat + 90.0) / CELL_DEG) as usize).min(GRID_ROWS - 1);
        let col = (((coord.lon + 180.0) / CELL_DEG) as usize).min(GRID_COLS - 1);
        row * GRID_COLS + col
    }

    fn nearest(&self, coord: Coord) -> (&'static City, f64) {
        self.cells[Self::cell_index(coord)]
            .iter()
            .map(|&c| (c, c.coord.distance_km(coord)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            // Every cell keeps at least the city nearest its own center
            // (dmin <= dmin + 2 rho + slack) and WORLD_CITIES is static.
            // ytcdn-lint: allow(PAN001) — non-empty by construction, see above
            .expect("grid cell candidate lists are non-empty by construction")
    }
}

impl fmt::Display for City {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}, {}", self.name, self.country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let db = CityDb::builtin();
        assert_eq!(db.by_name.len(), WORLD_CITIES.len());
    }

    #[test]
    fn all_coords_valid() {
        for c in WORLD_CITIES {
            assert!(
                Coord::new(c.coord.lat, c.coord.lon).is_ok(),
                "{} has invalid coords",
                c.name
            );
        }
    }

    #[test]
    fn continental_coverage_supports_landmark_plan() {
        // The paper's landmark set: 97 NA, 82 EU, 24 Asia, 8 SA, 3 OC, 1 AF.
        // We synthesize landmarks by jittering around cities, so we need a
        // reasonable base count per continent, not 97 distinct cities.
        let db = CityDb::builtin();
        assert!(db.in_continent(Continent::NorthAmerica).count() >= 30);
        assert!(db.in_continent(Continent::Europe).count() >= 30);
        assert!(db.in_continent(Continent::Asia).count() >= 12);
        assert!(db.in_continent(Continent::SouthAmerica).count() >= 6);
        assert!(db.in_continent(Continent::Oceania).count() >= 3);
        assert!(db.in_continent(Continent::Africa).count() >= 1);
    }

    #[test]
    fn nearest_of_city_coord_is_city() {
        let db = CityDb::builtin();
        let turin = db.named("Turin");
        let (found, d) = db.nearest(turin.coord);
        assert_eq!(found.name, "Turin");
        assert!(d < 1e-9);
    }

    #[test]
    fn nearest_of_offset_point() {
        let db = CityDb::builtin();
        let near_chicago = db.named("Chicago").coord.offset_km(10.0, 20.0);
        let (found, d) = db.nearest(near_chicago);
        assert_eq!(found.name, "Chicago");
        assert!((d - 20.0).abs() < 0.1);
    }

    /// Reference implementation: the pre-grid full linear scan.
    fn nearest_linear(coord: Coord) -> (&'static City, f64) {
        WORLD_CITIES
            .iter()
            .map(|c| (c, c.coord.distance_km(coord)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
    }

    #[test]
    fn grid_matches_linear_scan_at_city_coords() {
        let db = CityDb::builtin();
        for c in WORLD_CITIES {
            let (g, gd) = db.nearest(c.coord);
            let (l, ld) = nearest_linear(c.coord);
            assert_eq!(g.name, l.name, "at {}", c.name);
            assert_eq!(gd, ld);
        }
    }

    #[test]
    fn grid_matches_linear_scan_at_offsets() {
        let db = CityDb::builtin();
        // Offsets large enough to cross into neighboring cells from any
        // city, in several bearings.
        for c in WORLD_CITIES {
            for bearing in [0.0, 95.0, 190.0, 285.0] {
                for km in [13.0, 170.0, 600.0, 1400.0] {
                    let q = c.coord.offset_km(bearing, km);
                    let (g, gd) = db.nearest(q);
                    let (l, ld) = nearest_linear(q);
                    assert_eq!(g.name, l.name, "from {} bearing {bearing} km {km}", c.name);
                    assert_eq!(gd, ld);
                }
            }
        }
    }

    #[test]
    fn grid_matches_linear_scan_on_dense_sweep() {
        let db = CityDb::builtin();
        // A 3-degree global sweep, deliberately hitting cell boundaries
        // (multiples of CELL_DEG), the poles, and the date line.
        let mut lat = -90.0;
        while lat <= 90.0 {
            let mut lon = -180.0;
            while lon <= 180.0 {
                let q = Coord::new_unchecked(lat, lon);
                let (g, gd) = db.nearest(q);
                let (l, ld) = nearest_linear(q);
                assert_eq!(g.name, l.name, "at ({lat}, {lon})");
                assert_eq!(gd, ld);
                lon += 3.0;
            }
            lat += 3.0;
        }
    }

    #[test]
    fn expect_panics_on_unknown() {
        let db = CityDb::builtin();
        let r = std::panic::catch_unwind(|| db.named("Gotham"));
        assert!(r.is_err());
    }

    #[test]
    fn display_city() {
        let db = CityDb::builtin();
        assert_eq!(db.named("Turin").to_string(), "Turin, IT");
    }
}
