//! WGS84 coordinates and great-circle geometry.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::EARTH_RADIUS_KM;

/// A point on the Earth's surface: latitude and longitude in degrees.
///
/// Latitude is positive north, longitude positive east. Construction through
/// [`Coord::new`] validates the ranges; the type is `Copy` and cheap to pass
/// by value.
///
/// # Examples
///
/// ```
/// use ytcdn_geomodel::Coord;
///
/// let turin = Coord::new(45.07, 7.69).unwrap();
/// let west_lafayette = Coord::new(40.43, -86.91).unwrap();
/// let km = turin.distance_km(west_lafayette);
/// assert!((7100.0..7500.0).contains(&km), "got {km}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Coord {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
}

impl Coord {
    /// Creates a coordinate, validating that latitude is in `[-90, 90]` and
    /// longitude in `[-180, 180]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCoordError`] if either component is out of range or
    /// not finite.
    pub fn new(lat: f64, lon: f64) -> Result<Self, InvalidCoordError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(InvalidCoordError { lat, lon });
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(InvalidCoordError { lat, lon });
        }
        Ok(Self { lat, lon })
    }

    /// Creates a coordinate without range validation.
    ///
    /// Intended for compile-time tables of known-good values; out-of-range
    /// inputs produce meaningless distances rather than memory unsafety.
    pub const fn new_unchecked(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in kilometers.
    ///
    /// Uses the mean Earth radius; accurate to ~0.5 % which is far below the
    /// error the delay model introduces deliberately.
    pub fn distance_km(self, other: Coord) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Returns the destination reached by travelling `km` kilometers from
    /// `self` along the initial `bearing_deg` (degrees clockwise from north).
    ///
    /// Used by the CBG test harness to place synthetic targets at known
    /// distances from landmarks.
    pub fn offset_km(self, bearing_deg: f64, km: f64) -> Coord {
        let ang = km / EARTH_RADIUS_KM;
        let brg = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * brg.cos()).asin();
        let lon2 =
            lon1 + (brg.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());
        // Normalize longitude into [-180, 180].
        let lon_deg = (lon2.to_degrees() + 540.0).rem_euclid(360.0) - 180.0;
        Coord {
            lat: lat2.to_degrees(),
            lon: lon_deg,
        }
    }

    /// Initial bearing from `self` toward `other`, in degrees clockwise
    /// from north, normalized to `[0, 360)`.
    ///
    /// Inverse companion of [`Coord::offset_km`]: travelling from `self`
    /// along `bearing_deg_to(other)` for `distance_km(other)` kilometers
    /// arrives at `other`.
    pub fn bearing_deg_to(self, other: Coord) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        y.atan2(x).to_degrees().rem_euclid(360.0)
    }

    /// Geographic midpoint (centroid on the unit sphere) of an iterator of
    /// coordinates; `None` when the iterator is empty.
    ///
    /// CBG uses this to report a point estimate from the feasible region's
    /// sample points.
    pub fn centroid<I: IntoIterator<Item = Coord>>(points: I) -> Option<Coord> {
        let (mut x, mut y, mut z, mut n) = (0.0, 0.0, 0.0, 0usize);
        for p in points {
            let lat = p.lat.to_radians();
            let lon = p.lon.to_radians();
            x += lat.cos() * lon.cos();
            y += lat.cos() * lon.sin();
            z += lat.sin();
            n += 1;
        }
        if n == 0 {
            return None;
        }
        let (x, y, z) = (x / n as f64, y / n as f64, z / n as f64);
        let hyp = (x * x + y * y).sqrt();
        Some(Coord {
            lat: z.atan2(hyp).to_degrees(),
            lon: y.atan2(x).to_degrees(),
        })
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// Error returned by [`Coord::new`] for out-of-range components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidCoordError {
    lat: f64,
    lon: f64,
}

impl fmt::Display for InvalidCoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid coordinate: lat {} must be in [-90, 90], lon {} in [-180, 180]",
            self.lat, self.lon
        )
    }
}

impl std::error::Error for InvalidCoordError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(lat: f64, lon: f64) -> Coord {
        Coord::new(lat, lon).unwrap()
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(Coord::new(91.0, 0.0).is_err());
        assert!(Coord::new(-91.0, 0.0).is_err());
        assert!(Coord::new(0.0, 181.0).is_err());
        assert!(Coord::new(0.0, -181.0).is_err());
        assert!(Coord::new(f64::NAN, 0.0).is_err());
        assert!(Coord::new(0.0, f64::INFINITY).is_err());
        assert!(Coord::new(90.0, 180.0).is_ok());
        assert!(Coord::new(-90.0, -180.0).is_ok());
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = c(45.07, 7.69);
        assert!(p.distance_km(p) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = c(40.43, -86.91);
        let b = c(52.37, 4.90);
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
    }

    #[test]
    fn known_distances() {
        // London - New York: ~5570 km.
        let london = c(51.5074, -0.1278);
        let nyc = c(40.7128, -74.0060);
        let d = london.distance_km(nyc);
        assert!((5500.0..5650.0).contains(&d), "got {d}");
        // Antipodal-ish: half the Earth's circumference ~ 20015 km.
        let north = c(90.0, 0.0);
        let south = c(-90.0, 0.0);
        let d = north.distance_km(south);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }

    #[test]
    fn offset_roundtrip_distance() {
        let start = c(45.0, 7.0);
        for (bearing, km) in [(0.0, 100.0), (90.0, 1500.0), (200.0, 4000.0), (345.0, 42.0)] {
            let end = start.offset_km(bearing, km);
            let measured = start.distance_km(end);
            assert!(
                (measured - km).abs() < km * 1e-6 + 1e-6,
                "bearing {bearing} km {km} -> {measured}"
            );
        }
    }

    #[test]
    fn offset_normalizes_longitude() {
        let tokyo = c(35.68, 139.69);
        let east = tokyo.offset_km(90.0, 5000.0);
        assert!((-180.0..=180.0).contains(&east.lon), "lon {}", east.lon);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let origin = c(0.0, 0.0);
        assert!((origin.bearing_deg_to(c(1.0, 0.0)) - 0.0).abs() < 1e-6); // north
        assert!((origin.bearing_deg_to(c(0.0, 1.0)) - 90.0).abs() < 1e-6); // east
        assert!((origin.bearing_deg_to(c(-1.0, 0.0)) - 180.0).abs() < 1e-6); // south
        assert!((origin.bearing_deg_to(c(0.0, -1.0)) - 270.0).abs() < 1e-6); // west
    }

    #[test]
    fn bearing_offset_roundtrip() {
        let start = c(45.07, 7.69);
        for (bearing, km) in [(33.0, 500.0), (200.0, 1500.0), (350.0, 80.0)] {
            let end = start.offset_km(bearing, km);
            let back = start.bearing_deg_to(end);
            let diff = (back - bearing).abs().min(360.0 - (back - bearing).abs());
            assert!(diff < 0.5, "bearing {bearing} -> {back}");
        }
    }

    #[test]
    fn centroid_of_single_point_is_that_point() {
        let p = c(12.0, 34.0);
        let g = Coord::centroid([p]).unwrap();
        assert!((g.lat - 12.0).abs() < 1e-9 && (g.lon - 34.0).abs() < 1e-9);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(Coord::centroid(std::iter::empty()).is_none());
    }

    #[test]
    fn centroid_between_two_points_lies_between() {
        let a = c(0.0, 0.0);
        let b = c(0.0, 10.0);
        let g = Coord::centroid([a, b]).unwrap();
        assert!((g.lon - 5.0).abs() < 1e-6, "got {g}");
        assert!(g.lat.abs() < 1e-6);
    }

    #[test]
    fn display_formats() {
        let p = c(1.23456, -7.0);
        assert_eq!(p.to_string(), "(1.2346, -7.0000)");
    }
}
