//! Coarse continental regions, as used by the paper's Table III.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A continent, at the granularity the paper reports server locations
/// ("N. America / Europe / Others" in Table III, plus the finer split used
/// when describing the landmark set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
}

impl Continent {
    /// All continents, in a stable order.
    pub const ALL: [Continent; 6] = [
        Continent::NorthAmerica,
        Continent::SouthAmerica,
        Continent::Europe,
        Continent::Asia,
        Continent::Africa,
        Continent::Oceania,
    ];

    /// Collapses the continent into the three buckets of the paper's
    /// Table III: North America, Europe, and everything else.
    pub fn table3_bucket(self) -> Table3Bucket {
        match self {
            Continent::NorthAmerica => Table3Bucket::NorthAmerica,
            Continent::Europe => Table3Bucket::Europe,
            _ => Table3Bucket::Others,
        }
    }

    /// Short ASCII name, e.g. `"EU"` for Europe.
    pub fn code(self) -> &'static str {
        match self {
            Continent::NorthAmerica => "NA",
            Continent::SouthAmerica => "SA",
            Continent::Europe => "EU",
            Continent::Asia => "AS",
            Continent::Africa => "AF",
            Continent::Oceania => "OC",
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Continent::NorthAmerica => "North America",
            Continent::SouthAmerica => "South America",
            Continent::Europe => "Europe",
            Continent::Asia => "Asia",
            Continent::Africa => "Africa",
            Continent::Oceania => "Oceania",
        };
        f.write_str(name)
    }
}

impl FromStr for Continent {
    type Err = ParseContinentError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "NA" | "North America" => Ok(Continent::NorthAmerica),
            "SA" | "South America" => Ok(Continent::SouthAmerica),
            "EU" | "Europe" => Ok(Continent::Europe),
            "AS" | "Asia" => Ok(Continent::Asia),
            "AF" | "Africa" => Ok(Continent::Africa),
            "OC" | "Oceania" => Ok(Continent::Oceania),
            _ => Err(ParseContinentError(s.to_owned())),
        }
    }
}

/// Error returned when parsing a [`Continent`] from an unrecognized string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseContinentError(String);

impl fmt::Display for ParseContinentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized continent name: {:?}", self.0)
    }
}

impl std::error::Error for ParseContinentError {}

/// The three location buckets of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Table3Bucket {
    /// Servers geolocated to North America.
    NorthAmerica,
    /// Servers geolocated to Europe.
    Europe,
    /// Everywhere else.
    Others,
}

impl fmt::Display for Table3Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Table3Bucket::NorthAmerica => "N. America",
            Table3Bucket::Europe => "Europe",
            Table3Bucket::Others => "Others",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_code_parse() {
        for c in Continent::ALL {
            assert_eq!(c.code().parse::<Continent>().unwrap(), c);
            assert_eq!(c.to_string().parse::<Continent>().unwrap(), c);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("Atlantis".parse::<Continent>().is_err());
        let err = "XX".parse::<Continent>().unwrap_err();
        assert!(err.to_string().contains("XX"));
    }

    #[test]
    fn table3_buckets() {
        assert_eq!(
            Continent::NorthAmerica.table3_bucket(),
            Table3Bucket::NorthAmerica
        );
        assert_eq!(Continent::Europe.table3_bucket(), Table3Bucket::Europe);
        for c in [
            Continent::Asia,
            Continent::Africa,
            Continent::Oceania,
            Continent::SouthAmerica,
        ] {
            assert_eq!(c.table3_bucket(), Table3Bucket::Others);
        }
    }

    #[test]
    fn all_contains_six_distinct() {
        let mut v = Continent::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 6);
    }
}
